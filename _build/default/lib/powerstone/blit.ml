open Isa
open Asm

(* Memory map: source bitmap (rows x 8 words) at 0, destination bitmap
   (rows x 16 words) right after. Each source row is OR-blitted into the
   destination at word offset 3, bit offset 5. Checksum: xor of all
   destination words in v0. *)

let src_words_per_row = 8

let dst_words_per_row = 16

let bit_offset = 5

let word_offset = 3

let make ~scale =
  if scale < 1 then invalid_arg "Blit.make: scale must be >= 1";
  let rows = 64 * scale in
  let src_base = 0 in
  let dst_base = rows * src_words_per_row in
  let src = Data_gen.lcg_stream ~seed:0xb117 (rows * src_words_per_row) in
  let dst_init =
    Array.map (fun v -> v land 0x0F0F0F0F) (Data_gen.lcg_stream ~seed:0x0d57 (rows * dst_words_per_row))
  in
  let program =
    concat
      [
        li s6 (dst_base + word_offset);
        li s1 rows;
        [
          move s0 zero;
          label "row_loop";
          i (Bge (s0, s1, "checksum"));
          comment "s2 = source row pointer, s3 = destination row pointer";
          i (Sll (s2, s0, 3));
          i (Sll (s3, s0, 4));
          i (Add (s3, s3, s6));
          move s4 zero;
          comment "s4 = carry bits from the previous source word";
          move t0 zero;
          i (Addi (t1, zero, src_words_per_row));
          label "col_loop";
          i (Bge (t0, t1, "flush_carry"));
          i (Add (t2, s2, t0));
          i (Lw (t2, t2, 0));
          i (Sll (t3, t2, bit_offset));
          i (Or (t3, t3, s4));
          i (Add (t4, s3, t0));
          i (Lw (t5, t4, 0));
          i (Or (t5, t5, t3));
          i (Sw (t5, t4, 0));
          i (Srl (s4, t2, 32 - bit_offset));
          i (Addi (t0, t0, 1));
          i (J "col_loop");
          label "flush_carry";
          i (Add (t4, s3, t0));
          i (Lw (t5, t4, 0));
          i (Or (t5, t5, s4));
          i (Sw (t5, t4, 0));
          i (Addi (s0, s0, 1));
          i (J "row_loop");
          label "checksum";
          move v0 zero;
        ];
        li t0 dst_base;
        li t1 (dst_base + (rows * dst_words_per_row));
        [
          label "sum_loop";
          i (Bge (t0, t1, "done"));
          i (Lw (t2, t0, 0));
          i (Xor (v0, v0, t2));
          i (Addi (t0, t0, 1));
          i (J "sum_loop");
          label "done";
          i Halt;
        ];
      ]
  in
  let reference () =
    let dst = Array.copy dst_init in
    for r = 0 to rows - 1 do
      let carry = ref 0 in
      for c = 0 to src_words_per_row - 1 do
        let w = src.((r * src_words_per_row) + c) in
        let shifted = W32.sign32 (W32.sll w bit_offset lor !carry) in
        let d = (r * dst_words_per_row) + word_offset + c in
        dst.(d) <- W32.sign32 (dst.(d) lor shifted);
        carry := W32.srl w (32 - bit_offset)
      done;
      let d = (r * dst_words_per_row) + word_offset + src_words_per_row in
      dst.(d) <- W32.sign32 (dst.(d) lor !carry)
    done;
    Array.fold_left (fun acc w -> W32.sign32 (acc lxor w)) 0 dst
  in
  {
    Workload.name = (if scale = 1 then "blit" else Printf.sprintf "blit@%d" scale);
    description =
      Printf.sprintf "bit-aligned %d-row bitmap OR-blit with carry propagation" rows;
    program;
    init = [ (src_base, src); (dst_base, dst_init) ];
    mem_words = max 2048 (2 * (dst_base + (rows * dst_words_per_row)));
    max_steps = 2_000_000 * scale;
    reference;
  }

let benchmark = make ~scale:1
