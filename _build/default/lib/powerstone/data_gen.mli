(** Deterministic synthetic input data for the benchmark kernels.

    The original PowerStone inputs are not redistributable; these
    generators produce inputs of the same shape (sizes, value ranges,
    repetitiveness) so the kernels execute their real control flow.
    Everything is seeded and reproducible. *)

(** [lcg_stream ~seed n] is [n] raw 32-bit values from the classic
    [x <- x * 1103515245 + 12345] generator (signed 32-bit wrap). *)
val lcg_stream : seed:int -> int -> int array

(** [uniform ~seed ~bound n] is [n] values in [0, bound). *)
val uniform : seed:int -> bound:int -> int -> int array

(** [waveform ~seed n] is [n] smooth 16-bit audio-like samples (a bounded
    random walk), for the ADPCM codec. *)
val waveform : seed:int -> int -> int array

(** [text_like ~seed n] is [n] byte values with heavy repetition (short
    phrases drawn from a small alphabet repeated with mutations), for the
    compression kernel. *)
val text_like : seed:int -> int -> int array

(** [runs_bitstream ~seed ~lines ~width] encodes [lines] scanlines of
    alternating colour runs summing to [width] pixels into the 4-bit
    prefix code used by the fax kernel; returns the packed words (8
    nibbles per word, low nibble first) and the number of nibbles. *)
val runs_bitstream : seed:int -> lines:int -> width:int -> int array * int
