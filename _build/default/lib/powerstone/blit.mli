(** PowerStone [blit]: bit-aligned block transfer of a 64-row bitmap into
    a wider destination bitmap at a 5-bit offset, with carry propagation
    between words. *)

val benchmark : Workload.t

(** [make ~scale] builds a scaled variant: input sizes (and the trace
    length) grow roughly linearly with [scale]. [benchmark = make
    ~scale:1]. Raises [Invalid_argument] on [scale < 1]. *)
val make : scale:int -> Workload.t
