(** PowerStone [adpcm]: IMA ADPCM encoder — 4-bit codes from 16-bit
    samples using the standard 89-entry step-size table. *)

val benchmark : Workload.t

(** [make ~scale] builds a scaled variant: input sizes (and the trace
    length) grow roughly linearly with [scale]. [benchmark = make
    ~scale:1]. Raises [Invalid_argument] on [scale < 1]. *)
val make : scale:int -> Workload.t
