(** PowerStone [compress]: LZW compression with an open-addressing hash
    dictionary (linear probing), emitting codes over text-like input. *)

val benchmark : Workload.t

(** [make ~scale] builds a scaled variant: input sizes (and the trace
    length) grow roughly linearly with [scale]. [benchmark = make
    ~scale:1]. Raises [Invalid_argument] on [scale < 1]. *)
val make : scale:int -> Workload.t
