open Isa
open Asm

(* Memory map: 8 S-boxes of 64 entries at 0 (512 words), 16 round keys at
   512, blocks (L, R pairs) at 528 (64 * scale blocks), transformed in
   place. Round function: t = R xor K[r]; f = OR over i of
   sbox[i][(t >>> 4i) & 63] << 4i; (L, R) <- (R, L xor f).
   Checksum: v0 = rotl1(v0) xor L xor R after each block.

   DESIGN.md substitution note: the original benchmark is DES proper;
   this kernel keeps the DES structure (16 Feistel rounds, 8 S-box
   lookups per round through 512 words of tables, per-round subkeys)
   with synthetic S-box contents and a simplified key schedule, so the
   memory-access pattern — the only thing the cache study consumes — is
   preserved. *)

let num_rounds = 16

let keys_base = 512

let blocks_base = 528

let sboxes = Data_gen.uniform ~seed:0xde5b ~bound:16 512

let round_keys =
  Array.init num_rounds (fun r ->
      let spread = W32.mul 0x9E3779B9 (r + 1) in
      W32.sign32 (spread lxor W32.sll 0x2545F491 (r land 7)))

let make ~scale =
  if scale < 1 then invalid_arg "Des.make: scale must be >= 1";
  let num_blocks = 64 * scale in
  let blocks = Data_gen.lcg_stream ~seed:0xb10c (2 * num_blocks) in
  let program =
    concat
      [
        li s1 num_blocks;
        [
          move s0 zero;
          move v0 zero;
          label "block";
          i (Bge (s0, s1, "done"));
          i (Sll (s2, s0, 1));
          i (Addi (s2, s2, blocks_base));
          i (Lw (s3, s2, 0));
          comment "s3 = L, s4 = R";
          i (Lw (s4, s2, 1));
          move s5 zero;
          label "round";
          i (Addi (t0, zero, num_rounds));
          i (Bge (s5, t0, "writeback"));
          i (Addi (t0, s5, keys_base));
          i (Lw (t0, t0, 0));
          i (Xor (t0, s4, t0));
          comment "t1 = f accumulator; the eight s-box lookups are unrolled";
          move t1 zero;
        ];
        concat
          (List.init 8 (fun box ->
               [
                 i (Srl (t5, t0, 4 * box));
                 i (Andi (t5, t5, 0x3F));
                 i (Addi (t6, t5, box * 64));
                 i (Lw (t6, t6, 0));
                 i (Sll (t6, t6, 4 * box));
                 i (Or (t1, t1, t6));
               ]));
        [
          i (Xor (t7, s3, t1));
          move s3 s4;
          move s4 t7;
          i (Addi (s5, s5, 1));
          i (J "round");
          label "writeback";
          i (Sw (s3, s2, 0));
          i (Sw (s4, s2, 1));
          comment "checksum: v0 = rotl1(v0) xor L xor R";
          i (Sll (t8, v0, 1));
          i (Srl (t9, v0, 31));
          i (Or (v0, t8, t9));
          i (Xor (v0, v0, s3));
          i (Xor (v0, v0, s4));
          i (Addi (s0, s0, 1));
          i (J "block");
          label "done";
          i Halt;
        ];
      ]
  in
  let reference () =
    let state = Array.copy blocks in
    let checksum = ref 0 in
    for b = 0 to num_blocks - 1 do
      let left = ref state.(2 * b) and right = ref state.((2 * b) + 1) in
      for r = 0 to num_rounds - 1 do
        let t = W32.sign32 (!right lxor round_keys.(r)) in
        let f = ref 0 in
        for box = 0 to 7 do
          let six = W32.srl t (4 * box) land 0x3F in
          f := W32.sign32 (!f lor W32.sll sboxes.((box * 64) + six) (4 * box))
        done;
        let next_right = W32.sign32 (!left lxor !f) in
        left := !right;
        right := next_right
      done;
      state.(2 * b) <- !left;
      state.((2 * b) + 1) <- !right;
      let rotated = W32.sign32 (W32.sll !checksum 1 lor W32.srl !checksum 31) in
      checksum := W32.sign32 (rotated lxor !left lxor !right)
    done;
    !checksum
  in
  {
    Workload.name = (if scale = 1 then "des" else Printf.sprintf "des@%d" scale);
    description = Printf.sprintf "16-round table-driven Feistel cipher over %d blocks" num_blocks;
    program;
    init = [ (0, sboxes); (keys_base, round_keys); (blocks_base, blocks) ];
    mem_words = max 2048 (2 * (blocks_base + (2 * num_blocks)));
    max_steps = 2_000_000 * scale;
    reference;
  }

let benchmark = make ~scale:1
