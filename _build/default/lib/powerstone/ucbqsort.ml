open Isa
open Asm

(* Memory map: keys at 0 (1024 * scale), the work stack of (lo, hi)
   pairs after them. Partitioning is Lomuto with the middle element as
   pivot; ranges shorter than 8 are finished by insertion sort.
   Checksum: v0 = sum of a.(i) xor i over the sorted array (wrapping),
   which any correct sort must reproduce. *)

let make ~scale =
  if scale < 1 then invalid_arg "Ucbqsort.make: scale must be >= 1";
  let count = 1024 * scale in
  let stack_base = count + 64 in
  let keys = Data_gen.uniform ~seed:0x5042 ~bound:100000 count in
  let program =
    concat
      [
        li s7 stack_base;
        [
          comment "push the initial range (0, count-1); s0 = stack pointer";
          move s0 s7;
          i (Sw (zero, s0, 0));
        ];
        li t0 (count - 1);
        [
          i (Sw (t0, s0, 1));
          i (Addi (s0, s0, 2));
          label "work_loop";
          i (Bge (s7, s0, "checksum"));
          comment "pop (s1 = lo, s2 = hi)";
          i (Addi (s0, s0, -2));
          i (Lw (s1, s0, 0));
          i (Lw (s2, s0, 1));
          i (Bge (s1, s2, "work_loop"));
          i (Sub (t0, s2, s1));
          i (Slti (t1, t0, 8));
          i (Bne (t1, zero, "insertion"));
          comment "swap the middle element to the top: pivot in t2";
          i (Add (t0, s1, s2));
          i (Sra (t0, t0, 1));
          i (Lw (t2, t0, 0));
          i (Lw (t3, s2, 0));
          i (Sw (t3, t0, 0));
          i (Sw (t2, s2, 0));
          comment "Lomuto partition: t4 = i, t5 = j";
          i (Addi (t4, s1, -1));
          move t5 s1;
          label "part_loop";
          i (Bge (t5, s2, "part_done"));
          i (Lw (t6, t5, 0));
          i (Blt (t2, t6, "part_next"));
          i (Addi (t4, t4, 1));
          i (Lw (t7, t4, 0));
          i (Sw (t6, t4, 0));
          i (Sw (t7, t5, 0));
          label "part_next";
          i (Addi (t5, t5, 1));
          i (J "part_loop");
          label "part_done";
          i (Addi (t4, t4, 1));
          i (Lw (t7, t4, 0));
          i (Lw (t6, s2, 0));
          i (Sw (t6, t4, 0));
          i (Sw (t7, s2, 0));
          comment "push (lo, p-1) and (p+1, hi)";
          i (Addi (t5, t4, -1));
          i (Sw (s1, s0, 0));
          i (Sw (t5, s0, 1));
          i (Addi (s0, s0, 2));
          i (Addi (t5, t4, 1));
          i (Sw (t5, s0, 0));
          i (Sw (s2, s0, 1));
          i (Addi (s0, s0, 2));
          i (J "work_loop");
          label "insertion";
          i (Addi (t0, s1, 1));
          label "ins_outer";
          i (Blt (s2, t0, "work_loop"));
          i (Lw (t1, t0, 0));
          i (Addi (t2, t0, -1));
          label "ins_inner";
          i (Blt (t2, s1, "ins_place"));
          i (Lw (t3, t2, 0));
          i (Bge (t1, t3, "ins_place"));
          i (Sw (t3, t2, 1));
          i (Addi (t2, t2, -1));
          i (J "ins_inner");
          label "ins_place";
          i (Sw (t1, t2, 1));
          i (Addi (t0, t0, 1));
          i (J "ins_outer");
          label "checksum";
          move v0 zero;
          move t0 zero;
        ];
        li t1 count;
        [
          label "sum_loop";
          i (Bge (t0, t1, "done"));
          i (Lw (t2, t0, 0));
          i (Xor (t2, t2, t0));
          i (Add (v0, v0, t2));
          i (Addi (t0, t0, 1));
          i (J "sum_loop");
          label "done";
          i Halt;
        ];
      ]
  in
  let reference () =
    let sorted = Array.copy keys in
    Array.sort compare sorted;
    let checksum = ref 0 in
    Array.iteri (fun idx v -> checksum := W32.add !checksum (v lxor idx)) sorted;
    !checksum
  in
  {
    Workload.name = (if scale = 1 then "ucbqsort" else Printf.sprintf "ucbqsort@%d" scale);
    description =
      Printf.sprintf "iterative quicksort with insertion-sort cutoff over %d keys" count;
    program;
    init = [ (0, keys) ];
    mem_words = max 8192 (4 * count);
    max_steps = 5_000_000 * scale;
    reference;
  }

let benchmark = make ~scale:1
