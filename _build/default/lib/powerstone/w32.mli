(** 32-bit two's-complement helpers for the native reference
    implementations, mirroring the machine's arithmetic exactly so that
    reference checksums and VM checksums are comparable bit for bit. *)

(** [sign32 x] normalises to signed 32-bit (the register representation). *)
val sign32 : int -> int

(** [u32 x] is the unsigned 32-bit view. *)
val u32 : int -> int

(** Wrapping arithmetic on sign32-normalised values. *)
val add : int -> int -> int

val sub : int -> int -> int
val mul : int -> int -> int

(** [srl x n] is the machine's logical right shift. *)
val srl : int -> int -> int

(** [sra x n] is the arithmetic right shift. *)
val sra : int -> int -> int

(** [sll x n] is the wrapping left shift. *)
val sll : int -> int -> int
