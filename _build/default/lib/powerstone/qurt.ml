open Isa
open Asm

(* Memory map (count = 400 * scale): coefficient arrays a at 0, b at
   count, c at 2*count; root arrays r1 at 3*count, r2 at 4*count; call
   stack growing down from 5*count + 64. The integer Newton square root
   is a real subroutine with a stack frame (return address and
   callee-saved spills), as in the original compiled benchmark. A final
   pass re-reads both root arrays into the checksum. Checksum:
   v0 = v0 * 5 + (r1 + r2) per triple (3 marks a complex pair), then the
   wrapping sum of both root arrays. *)

let make ~scale =
  if scale < 1 then invalid_arg "Qurt.make: scale must be >= 1";
  let count = 400 * scale in
  let b_base = count in
  let c_base = 2 * count in
  let r1_base = 3 * count in
  let stack_top = (5 * count) + 64 in
  let coeff_a = Array.map (fun v -> 1 + v) (Data_gen.uniform ~seed:0x9a1 ~bound:20 count) in
  let coeff_b = Array.map (fun v -> v - 500) (Data_gen.uniform ~seed:0x9b2 ~bound:1001 count) in
  let coeff_c = Array.map (fun v -> v - 500) (Data_gen.uniform ~seed:0x9c3 ~bound:1001 count) in
  let program =
    concat
      [
        li sp stack_top;
        li s1 count;
        li s6 b_base;
        li s7 c_base;
        li gp r1_base;
        [
          move s0 zero;
          move v0 zero;
          label "triple";
          i (Bge (s0, s1, "readback"));
          i (Lw (t0, s0, 0));
          comment "t0 = a, t1 = b, t2 = c";
          i (Add (t3, s0, s6));
          i (Lw (t1, t3, 0));
          i (Add (t3, s0, s7));
          i (Lw (t2, t3, 0));
          comment "t4 = discriminant";
          i (Mul (t4, t1, t1));
          i (Mul (t5, t0, t2));
          i (Sll (t5, t5, 2));
          i (Sub (t4, t4, t5));
          i (Blt (t4, zero, "complex"));
          comment "call isqrt(disc); a and b survive in s2/s3 across the call";
          move s2 t0;
          move s3 t1;
          move a0 t4;
          i (Jal "isqrt");
          comment "roots r1 = (-b + s) / 2a, r2 = (-b - s) / 2a";
          i (Sub (t8, zero, s3));
          i (Add (t9, t8, v1));
          i (Sll (t5, s2, 1));
          i (Div (t9, t9, t5));
          i (Sub (t8, t8, v1));
          i (Div (t8, t8, t5));
          i (Add (t6, s0, gp));
          i (Sw (t9, t6, 0));
          i (Add (t6, t6, s1));
          i (Sw (t8, t6, 0));
          i (Add (t9, t9, t8));
          i (Addi (t7, zero, 5));
          i (Mul (v0, v0, t7));
          i (Add (v0, v0, t9));
          i (J "next");
          label "complex";
          i (Add (t6, s0, gp));
          i (Sw (zero, t6, 0));
          i (Add (t6, t6, s1));
          i (Sw (zero, t6, 0));
          i (Addi (t7, zero, 5));
          i (Mul (v0, v0, t7));
          i (Addi (v0, v0, 3));
          label "next";
          i (Addi (s0, s0, 1));
          i (J "triple");
          label "readback";
          move t0 zero;
          i (Sll (t1, s1, 1));
          label "sum_roots";
          i (Bge (t0, t1, "done"));
          i (Add (t2, t0, gp));
          i (Lw (t2, t2, 0));
          i (Add (v0, v0, t2));
          i (Addi (t0, t0, 1));
          i (J "sum_roots");
          label "done";
          i Halt;
          comment "-- int isqrt(a0): Newton iteration, v1 = floor(sqrt(a0))";
          label "isqrt";
          i (Addi (sp, sp, -3));
          i (Sw (ra, sp, 0));
          i (Sw (s4, sp, 1));
          i (Sw (s5, sp, 2));
          i (Beq (a0, zero, "isqrt_zero"));
          move s4 a0;
          i (Addi (s5, a0, 1));
          i (Sra (s5, s5, 1));
          label "newton";
          i (Bge (s5, s4, "isqrt_ret"));
          move s4 s5;
          i (Div (t8, a0, s4));
          i (Add (s5, s4, t8));
          i (Sra (s5, s5, 1));
          i (J "newton");
          label "isqrt_zero";
          move s4 zero;
          label "isqrt_ret";
          move v1 s4;
          i (Lw (ra, sp, 0));
          i (Lw (s4, sp, 1));
          i (Lw (s5, sp, 2));
          i (Addi (sp, sp, 3));
          i (Jr ra);
        ];
      ]
  in
  let isqrt_newton disc =
    if disc = 0 then 0
    else begin
      let x = ref disc in
      let y = ref (W32.sra (W32.add disc 1) 1) in
      while !y < !x do
        x := !y;
        y := W32.sra (W32.add !x (disc / !x)) 1
      done;
      !x
    end
  in
  let reference () =
    let checksum = ref 0 in
    let roots = Array.make (2 * count) 0 in
    for idx = 0 to count - 1 do
      let a = coeff_a.(idx) and b = coeff_b.(idx) and c = coeff_c.(idx) in
      let disc = W32.sub (W32.mul b b) (W32.sll (W32.mul a c) 2) in
      if disc < 0 then checksum := W32.add (W32.mul !checksum 5) 3
      else begin
        let s = isqrt_newton disc in
        let two_a = W32.sll a 1 in
        let r1 = W32.add (W32.sub 0 b) s / two_a in
        let r2 = W32.sub (W32.sub 0 b) s / two_a in
        roots.(idx) <- r1;
        roots.(count + idx) <- r2;
        checksum := W32.add (W32.mul !checksum 5) (W32.add r1 r2)
      end
    done;
    Array.iter (fun r -> checksum := W32.add !checksum r) roots;
    !checksum
  in
  {
    Workload.name = (if scale = 1 then "qurt" else Printf.sprintf "qurt@%d" scale);
    description =
      Printf.sprintf "quadratic roots over %d triples with a Newton isqrt subroutine" count;
    program;
    init = [ (0, coeff_a); (b_base, coeff_b); (c_base, coeff_c) ];
    mem_words = max 2048 (2 * stack_top);
    max_steps = 2_000_000 * scale;
    reference;
  }

let benchmark = make ~scale:1
