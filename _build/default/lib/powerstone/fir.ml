open Isa
open Asm

(* Memory map (for a given scale): samples x at 0 (512 * scale), taps h
   just after, outputs y after a 16-word gap. Checksum: wrapping sum of
   the outputs in v0. *)

let num_taps = 32

let make ~scale =
  if scale < 1 then invalid_arg "Fir.make: scale must be >= 1";
  let num_samples = 512 * scale in
  let taps_base = num_samples in
  let output_base = num_samples + num_taps + 16 in
  let samples = Array.map (fun v -> v - 1000) (Data_gen.uniform ~seed:0xf1f ~bound:2001 num_samples) in
  let taps = Array.map (fun v -> v - 8) (Data_gen.uniform ~seed:0x7a9 ~bound:17 num_taps) in
  let program =
    concat
      [
        [
          move s0 zero;
        ];
        li s1 (num_samples - num_taps + 1);
        [
          move v0 zero;
          label "outer";
          i (Bge (s0, s1, "done"));
          move t3 zero;
          move t4 zero;
          i (Addi (t5, zero, num_taps));
          label "inner";
          i (Bge (t4, t5, "emit"));
          i (Add (t6, s0, t4));
          i (Addi (t7, t4, taps_base));
        ];
        (* the multiply-accumulate is unrolled four-fold *)
        concat
          (List.init 4 (fun k ->
               [
                 i (Lw (a0, t6, k));
                 i (Lw (a1, t7, k));
                 i (Mul (a1, a0, a1));
                 i (Add (t3, t3, a1));
               ]));
        [
          i (Addi (t4, t4, 4));
          i (J "inner");
          label "emit";
        ];
        li t8 output_base;
        [
          i (Add (t8, s0, t8));
          i (Sw (t3, t8, 0));
          i (Add (v0, v0, t3));
          i (Addi (s0, s0, 1));
          i (J "outer");
          label "done";
          i Halt;
        ];
      ]
  in
  let reference () =
    let checksum = ref 0 in
    for n = 0 to num_samples - num_taps do
      let acc = ref 0 in
      for k = 0 to num_taps - 1 do
        acc := W32.add !acc (W32.mul samples.(n + k) taps.(k))
      done;
      checksum := W32.add !checksum !acc
    done;
    !checksum
  in
  {
    Workload.name = (if scale = 1 then "fir" else Printf.sprintf "fir@%d" scale);
    description = Printf.sprintf "%d-tap integer FIR filter over %d samples" num_taps num_samples;
    program;
    init = [ (0, samples); (taps_base, taps) ];
    mem_words = max 2048 (2 * (output_base + num_samples));
    max_steps = 2_000_000 * scale;
    reference;
  }

let benchmark = make ~scale:1
