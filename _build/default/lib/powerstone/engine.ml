open Isa
open Asm

(* Memory map: 16x16 spark-advance map at 0 (row-major). The sensor
   stream is produced in-kernel by the classic LCG so the control flow
   includes the multiply-accumulate of the generator itself. Checksum:
   wrapping sum of the (clamped) advance values in v0. *)

let lcg_seed = 0xe6e

let advance_map = Array.init 256 (fun i -> ((i / 16 * 3) + (i mod 16 * 2)) mod 50)

let lcg_mul = 1103515245

let lcg_add = 12345

let make ~scale =
  if scale < 1 then invalid_arg "Engine.make: scale must be >= 1";
  let iterations = 2000 * scale in
  let program =
    concat
      [
        li s5 lcg_mul;
        li s6 lcg_add;
        li s0 lcg_seed;
        li s2 iterations;
        [
          move s1 zero;
          move v0 zero;
          label "sample";
          i (Bge (s1, s2, "done"));
          comment "draw rpm and load from the LCG (bits 16..23)";
          i (Mul (s0, s0, s5));
          i (Add (s0, s0, s6));
          i (Srl (t0, s0, 16));
          i (Andi (t0, t0, 0xFF));
          i (Mul (s0, s0, s5));
          i (Add (s0, s0, s6));
          i (Srl (t1, s0, 16));
          i (Andi (t1, t1, 0xFF));
          comment "integer cell (t2, t3) and fractions (t4, t5)";
          i (Srl (t2, t0, 4));
          i (Andi (t4, t0, 0xF));
          i (Srl (t3, t1, 4));
          i (Andi (t5, t1, 0xF));
          comment "clamped neighbour cell (t6, t7)";
          i (Addi (t6, t2, 1));
          i (Slti (t8, t6, 16));
          i (Bne (t8, zero, "row_ok"));
          i (Addi (t6, zero, 15));
          label "row_ok";
          i (Addi (t7, t3, 1));
          i (Slti (t8, t7, 16));
          i (Bne (t8, zero, "col_ok"));
          i (Addi (t7, zero, 15));
          label "col_ok";
          comment "fetch the four map corners";
          i (Sll (t8, t2, 4));
          i (Add (t9, t8, t3));
          i (Lw (a0, t9, 0));
          i (Add (t9, t8, t7));
          i (Lw (a1, t9, 0));
          i (Sll (t8, t6, 4));
          i (Add (t9, t8, t3));
          i (Lw (a2, t9, 0));
          i (Add (t9, t8, t7));
          i (Lw (a3, t9, 0));
          comment "bilinear blend: rows by t5, then columns by t4";
          i (Addi (t8, zero, 16));
          i (Sub (t9, t8, t5));
          i (Mul (a0, a0, t9));
          i (Mul (a1, a1, t5));
          i (Add (a0, a0, a1));
          i (Mul (a2, a2, t9));
          i (Mul (a3, a3, t5));
          i (Add (a2, a2, a3));
          i (Sub (t9, t8, t4));
          i (Mul (a0, a0, t9));
          i (Mul (a2, a2, t4));
          i (Add (a0, a0, a2));
          i (Sra (a0, a0, 8));
          comment "knock guard: clamp advance at 40 degrees";
          i (Slti (t8, a0, 41));
          i (Bne (t8, zero, "accumulate"));
          i (Addi (a0, zero, 40));
          label "accumulate";
          i (Add (v0, v0, a0));
          i (Addi (s1, s1, 1));
          i (J "sample");
          label "done";
          i Halt;
        ];
      ]
  in
  let reference () =
    let x = ref (W32.sign32 lcg_seed) in
    let draw () =
      x := W32.add (W32.mul !x lcg_mul) lcg_add;
      W32.srl !x 16 land 0xFF
    in
    let checksum = ref 0 in
    for _sample = 1 to iterations do
      let rpm = draw () in
      let load = draw () in
      let i0 = rpm lsr 4 and fi = rpm land 0xF in
      let j0 = load lsr 4 and fj = load land 0xF in
      let i1 = min (i0 + 1) 15 and j1 = min (j0 + 1) 15 in
      let m r c = advance_map.((r * 16) + c) in
      let top = (m i0 j0 * (16 - fj)) + (m i0 j1 * fj) in
      let bottom = (m i1 j0 * (16 - fj)) + (m i1 j1 * fj) in
      let advance = ((top * (16 - fi)) + (bottom * fi)) asr 8 in
      let advance = min advance 40 in
      checksum := W32.add !checksum advance
    done;
    !checksum
  in
  {
    Workload.name = (if scale = 1 then "engine" else Printf.sprintf "engine@%d" scale);
    description =
      Printf.sprintf "spark-advance controller: bilinear 16x16 map lookups over %d samples"
        iterations;
    program;
    init = [ (0, advance_map) ];
    mem_words = 1024;
    max_steps = 2_000_000 * scale;
    reference;
  }

let benchmark = make ~scale:1
