let lcg_next x = W32.add (W32.mul x 1103515245) 12345

let lcg_stream ~seed n =
  let out = Array.make n 0 in
  let x = ref (W32.sign32 seed) in
  for i = 0 to n - 1 do
    x := lcg_next !x;
    out.(i) <- !x
  done;
  out

let uniform ~seed ~bound n =
  if bound <= 0 then invalid_arg "Data_gen.uniform: bound must be positive";
  Array.map (fun v -> W32.u32 v mod bound) (lcg_stream ~seed n)

let waveform ~seed n =
  let steps = uniform ~seed ~bound:400 n in
  let out = Array.make n 0 in
  let level = ref 0 in
  for i = 0 to n - 1 do
    level := !level + steps.(i) - 200;
    if !level > 30000 then level := 30000;
    if !level < -30000 then level := -30000;
    out.(i) <- !level
  done;
  out

let text_like ~seed n =
  (* Draw words from a tiny dictionary so that byte pairs repeat heavily,
     giving the LZW dictionary real hits. *)
  let dictionary =
    [| "the "; "cache "; "of "; "embedded "; "system "; "design "; "miss ";
       "trace "; "and "; "for " |]
  in
  let picks = uniform ~seed ~bound:(Array.length dictionary) n in
  let out = Array.make n 0 in
  let word = ref "" in
  let pos = ref 0 in
  let pick = ref 0 in
  for i = 0 to n - 1 do
    if !pos >= String.length !word then begin
      word := dictionary.(picks.(!pick mod n));
      incr pick;
      pos := 0
    end;
    out.(i) <- Char.code !word.[!pos];
    incr pos
  done;
  out

let runs_bitstream ~seed ~lines ~width =
  let raw = uniform ~seed ~bound:997 (lines * 64) in
  let nibbles = ref [] in
  let count = ref 0 in
  let emit nib =
    nibbles := nib :: !nibbles;
    incr count
  in
  let emit_run len =
    let rec loop len =
      if len >= 15 then begin
        emit 15;
        loop (len - 15)
      end
      else emit len
    in
    loop len
  in
  let next = ref 0 in
  let draw bound =
    let v = raw.(!next mod Array.length raw) mod bound in
    incr next;
    v
  in
  for _line = 1 to lines do
    let remaining = ref width in
    let white = ref true in
    while !remaining > 0 do
      let run =
        let wish = if !white then 1 + draw 40 else 1 + draw 8 in
        min wish !remaining
      in
      emit_run run;
      remaining := !remaining - run;
      white := not !white
    done
  done;
  let nibble_list = List.rev !nibbles in
  let words = Array.make ((!count + 7) / 8) 0 in
  List.iteri
    (fun idx nib -> words.(idx / 8) <- words.(idx / 8) lor (nib lsl (4 * (idx mod 8))))
    nibble_list;
  (words, !count)
