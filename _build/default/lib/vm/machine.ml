exception Fault of string

type result = { steps : int; registers : int array; memory : int array }

let sign32 x =
  let m = x land 0xFFFFFFFF in
  if m >= 0x80000000 then m - 0x100000000 else m

let u32 x = x land 0xFFFFFFFF

let fault pc fmt = Printf.ksprintf (fun msg -> raise (Fault (Printf.sprintf "pc=%d: %s" pc msg))) fmt

let run ?(mem_words = 65536) ?(init = []) ?(max_steps = 30_000_000) ?itrace ?dtrace
    program =
  let mem = Array.make mem_words 0 in
  List.iter
    (fun (base, values) ->
      if base < 0 || base + Array.length values > mem_words then
        invalid_arg "Machine.run: init segment out of data memory";
      Array.blit values 0 mem base (Array.length values))
    init;
  let regs = Array.make 32 0 in
  let read r = if r = 0 then 0 else regs.(r) in
  let write r v = if r <> 0 then regs.(r) <- sign32 v in
  let load pc addr =
    if addr < 0 || addr >= mem_words then fault pc "load from word address %d" addr;
    (match dtrace with Some t -> Trace.add t ~addr ~kind:Trace.Read | None -> ());
    mem.(addr)
  in
  let store pc addr v =
    if addr < 0 || addr >= mem_words then fault pc "store to word address %d" addr;
    (match dtrace with Some t -> Trace.add t ~addr ~kind:Trace.Write | None -> ());
    mem.(addr) <- sign32 v
  in
  let code_len = Array.length program in
  let steps = ref 0 in
  let pc = ref 0 in
  let running = ref true in
  while !running do
    if !steps >= max_steps then fault !pc "step budget of %d exhausted" max_steps;
    if !pc < 0 || !pc >= code_len then fault !pc "fell off the program (code length %d)" code_len;
    (match itrace with Some t -> Trace.add t ~addr:!pc ~kind:Trace.Fetch | None -> ());
    incr steps;
    let next = !pc + 1 in
    let target = ref next in
    (match program.(!pc) with
    | Isa.Add (d, s, t) -> write d (read s + read t)
    | Isa.Sub (d, s, t) -> write d (read s - read t)
    | Isa.And (d, s, t) -> write d (read s land read t)
    | Isa.Or (d, s, t) -> write d (read s lor read t)
    | Isa.Xor (d, s, t) -> write d (read s lxor read t)
    | Isa.Nor (d, s, t) -> write d (lnot (read s lor read t))
    | Isa.Slt (d, s, t) -> write d (if read s < read t then 1 else 0)
    | Isa.Sltu (d, s, t) -> write d (if u32 (read s) < u32 (read t) then 1 else 0)
    | Isa.Mul (d, s, t) -> write d (read s * read t)
    | Isa.Div (d, s, t) ->
      let divisor = read t in
      write d (if divisor = 0 then 0 else read s / divisor)
    | Isa.Rem (d, s, t) ->
      let divisor = read t in
      write d (if divisor = 0 then read s else read s mod divisor)
    | Isa.Sllv (d, s, t) -> write d (read s lsl (read t land 31))
    | Isa.Srlv (d, s, t) -> write d (u32 (read s) lsr (read t land 31))
    | Isa.Srav (d, s, t) -> write d (read s asr (read t land 31))
    | Isa.Addi (d, s, imm) -> write d (read s + imm)
    | Isa.Andi (d, s, imm) -> write d (read s land (imm land 0xFFFF))
    | Isa.Ori (d, s, imm) -> write d (read s lor (imm land 0xFFFF))
    | Isa.Xori (d, s, imm) -> write d (read s lxor (imm land 0xFFFF))
    | Isa.Slti (d, s, imm) -> write d (if read s < imm then 1 else 0)
    | Isa.Sltiu (d, s, imm) -> write d (if u32 (read s) < u32 imm then 1 else 0)
    | Isa.Lui (d, imm) -> write d ((imm land 0xFFFF) lsl 16)
    | Isa.Sll (d, s, sh) -> write d (read s lsl (sh land 31))
    | Isa.Srl (d, s, sh) -> write d (u32 (read s) lsr (sh land 31))
    | Isa.Sra (d, s, sh) -> write d (read s asr (sh land 31))
    | Isa.Lw (d, s, off) -> write d (load !pc (read s + off))
    | Isa.Sw (d, s, off) -> store !pc (read s + off) (read d)
    | Isa.Beq (a, b, l) -> if read a = read b then target := l
    | Isa.Bne (a, b, l) -> if read a <> read b then target := l
    | Isa.Blt (a, b, l) -> if read a < read b then target := l
    | Isa.Bge (a, b, l) -> if read a >= read b then target := l
    | Isa.Bltu (a, b, l) -> if u32 (read a) < u32 (read b) then target := l
    | Isa.Bgeu (a, b, l) -> if u32 (read a) >= u32 (read b) then target := l
    | Isa.J l -> target := l
    | Isa.Jal l ->
      write 31 next;
      target := l
    | Isa.Jr r -> target := read r
    | Isa.Nop -> ()
    | Isa.Halt -> running := false);
    pc := !target
  done;
  { steps = !steps; registers = regs; memory = mem }

let run_encoded ?mem_words ?init ?max_steps ?itrace ?dtrace words =
  run ?mem_words ?init ?max_steps ?itrace ?dtrace (Encode.decode_program words)

let return_value result = result.registers.(2)
