type reg = int

type 'label instr =
  | Add of reg * reg * reg
  | Sub of reg * reg * reg
  | And of reg * reg * reg
  | Or of reg * reg * reg
  | Xor of reg * reg * reg
  | Nor of reg * reg * reg
  | Slt of reg * reg * reg
  | Sltu of reg * reg * reg
  | Mul of reg * reg * reg
  | Div of reg * reg * reg
  | Rem of reg * reg * reg
  | Sllv of reg * reg * reg
  | Srlv of reg * reg * reg
  | Srav of reg * reg * reg
  | Addi of reg * reg * int
  | Andi of reg * reg * int
  | Ori of reg * reg * int
  | Xori of reg * reg * int
  | Slti of reg * reg * int
  | Sltiu of reg * reg * int
  | Lui of reg * int
  | Sll of reg * reg * int
  | Srl of reg * reg * int
  | Sra of reg * reg * int
  | Lw of reg * reg * int
  | Sw of reg * reg * int
  | Beq of reg * reg * 'label
  | Bne of reg * reg * 'label
  | Blt of reg * reg * 'label
  | Bge of reg * reg * 'label
  | Bltu of reg * reg * 'label
  | Bgeu of reg * reg * 'label
  | J of 'label
  | Jal of 'label
  | Jr of reg
  | Nop
  | Halt

type program = int instr array

let map_label f = function
  | Beq (a, b, l) -> Beq (a, b, f l)
  | Bne (a, b, l) -> Bne (a, b, f l)
  | Blt (a, b, l) -> Blt (a, b, f l)
  | Bge (a, b, l) -> Bge (a, b, f l)
  | Bltu (a, b, l) -> Bltu (a, b, f l)
  | Bgeu (a, b, l) -> Bgeu (a, b, f l)
  | J l -> J (f l)
  | Jal l -> Jal (f l)
  | Add (a, b, c) -> Add (a, b, c)
  | Sub (a, b, c) -> Sub (a, b, c)
  | And (a, b, c) -> And (a, b, c)
  | Or (a, b, c) -> Or (a, b, c)
  | Xor (a, b, c) -> Xor (a, b, c)
  | Nor (a, b, c) -> Nor (a, b, c)
  | Slt (a, b, c) -> Slt (a, b, c)
  | Sltu (a, b, c) -> Sltu (a, b, c)
  | Mul (a, b, c) -> Mul (a, b, c)
  | Div (a, b, c) -> Div (a, b, c)
  | Rem (a, b, c) -> Rem (a, b, c)
  | Sllv (a, b, c) -> Sllv (a, b, c)
  | Srlv (a, b, c) -> Srlv (a, b, c)
  | Srav (a, b, c) -> Srav (a, b, c)
  | Addi (a, b, i) -> Addi (a, b, i)
  | Andi (a, b, i) -> Andi (a, b, i)
  | Ori (a, b, i) -> Ori (a, b, i)
  | Xori (a, b, i) -> Xori (a, b, i)
  | Slti (a, b, i) -> Slti (a, b, i)
  | Sltiu (a, b, i) -> Sltiu (a, b, i)
  | Lui (a, i) -> Lui (a, i)
  | Sll (a, b, i) -> Sll (a, b, i)
  | Srl (a, b, i) -> Srl (a, b, i)
  | Sra (a, b, i) -> Sra (a, b, i)
  | Lw (a, b, i) -> Lw (a, b, i)
  | Sw (a, b, i) -> Sw (a, b, i)
  | Jr r -> Jr r
  | Nop -> Nop
  | Halt -> Halt

let registers_of = function
  | Add (a, b, c) | Sub (a, b, c) | And (a, b, c) | Or (a, b, c)
  | Xor (a, b, c) | Nor (a, b, c) | Slt (a, b, c) | Sltu (a, b, c)
  | Mul (a, b, c) | Div (a, b, c) | Rem (a, b, c)
  | Sllv (a, b, c) | Srlv (a, b, c) | Srav (a, b, c) ->
    [ a; b; c ]
  | Addi (a, b, _) | Andi (a, b, _) | Ori (a, b, _) | Xori (a, b, _)
  | Slti (a, b, _) | Sltiu (a, b, _)
  | Sll (a, b, _) | Srl (a, b, _) | Sra (a, b, _)
  | Lw (a, b, _) | Sw (a, b, _)
  | Beq (a, b, _) | Bne (a, b, _) | Blt (a, b, _) | Bge (a, b, _)
  | Bltu (a, b, _) | Bgeu (a, b, _) ->
    [ a; b ]
  | Lui (a, _) -> [ a ]
  | Jr r -> [ r ]
  | J _ | Jal _ | Nop | Halt -> []

let validate_registers instr =
  List.iter
    (fun r ->
      if r < 0 || r > 31 then
        invalid_arg (Printf.sprintf "Isa: register %d out of 0..31" r))
    (registers_of instr)

let register_name r =
  match r with
  | 0 -> "$zero"
  | 1 -> "$at"
  | 2 -> "$v0"
  | 3 -> "$v1"
  | 4 | 5 | 6 | 7 -> Printf.sprintf "$a%d" (r - 4)
  | r when r >= 8 && r <= 15 -> Printf.sprintf "$t%d" (r - 8)
  | r when r >= 16 && r <= 23 -> Printf.sprintf "$s%d" (r - 16)
  | 24 -> "$t8"
  | 25 -> "$t9"
  | 26 | 27 -> Printf.sprintf "$k%d" (r - 26)
  | 28 -> "$gp"
  | 29 -> "$sp"
  | 30 -> "$fp"
  | 31 -> "$ra"
  | r -> Printf.sprintf "$r%d" r

let mnemonic = function
  | Add _ -> "add"
  | Sub _ -> "sub"
  | And _ -> "and"
  | Or _ -> "or"
  | Xor _ -> "xor"
  | Nor _ -> "nor"
  | Slt _ -> "slt"
  | Sltu _ -> "sltu"
  | Mul _ -> "mul"
  | Div _ -> "div"
  | Rem _ -> "rem"
  | Sllv _ -> "sllv"
  | Srlv _ -> "srlv"
  | Srav _ -> "srav"
  | Addi _ -> "addi"
  | Andi _ -> "andi"
  | Ori _ -> "ori"
  | Xori _ -> "xori"
  | Slti _ -> "slti"
  | Sltiu _ -> "sltiu"
  | Lui _ -> "lui"
  | Sll _ -> "sll"
  | Srl _ -> "srl"
  | Sra _ -> "sra"
  | Lw _ -> "lw"
  | Sw _ -> "sw"
  | Beq _ -> "beq"
  | Bne _ -> "bne"
  | Blt _ -> "blt"
  | Bge _ -> "bge"
  | Bltu _ -> "bltu"
  | Bgeu _ -> "bgeu"
  | J _ -> "j"
  | Jal _ -> "jal"
  | Jr _ -> "jr"
  | Nop -> "nop"
  | Halt -> "halt"

let pp_instr fmt (instr : int instr) =
  let name = mnemonic instr in
  let r = register_name in
  match instr with
  | Add (d, s, t) | Sub (d, s, t) | And (d, s, t) | Or (d, s, t)
  | Xor (d, s, t) | Nor (d, s, t) | Slt (d, s, t) | Sltu (d, s, t)
  | Mul (d, s, t) | Div (d, s, t) | Rem (d, s, t)
  | Sllv (d, s, t) | Srlv (d, s, t) | Srav (d, s, t) ->
    Format.fprintf fmt "%-6s %s, %s, %s" name (r d) (r s) (r t)
  | Addi (d, s, imm) | Andi (d, s, imm) | Ori (d, s, imm) | Xori (d, s, imm)
  | Slti (d, s, imm) | Sltiu (d, s, imm)
  | Sll (d, s, imm) | Srl (d, s, imm) | Sra (d, s, imm) ->
    Format.fprintf fmt "%-6s %s, %s, %d" name (r d) (r s) imm
  | Lui (d, imm) -> Format.fprintf fmt "%-6s %s, %d" name (r d) imm
  | Lw (d, s, off) | Sw (d, s, off) ->
    Format.fprintf fmt "%-6s %s, %d(%s)" name (r d) off (r s)
  | Beq (a, b, target) | Bne (a, b, target) | Blt (a, b, target)
  | Bge (a, b, target) | Bltu (a, b, target) | Bgeu (a, b, target) ->
    Format.fprintf fmt "%-6s %s, %s, %d" name (r a) (r b) target
  | J target | Jal target -> Format.fprintf fmt "%-6s %d" name target
  | Jr reg -> Format.fprintf fmt "%-6s %s" name (r reg)
  | Nop | Halt -> Format.fprintf fmt "%s" name
