(** Instruction set of the trace-generating virtual machine.

    A small MIPS-R3000-flavoured RISC: 32 general-purpose registers
    (register 0 wired to zero), word-addressed Harvard memory (separate
    instruction and data spaces, matching the paper's split instruction /
    data traces), 32-bit two's-complement arithmetic.

    The instruction type is polymorphic in the branch-target type: the
    assembler builds ['label instr] values with symbolic labels and
    resolves them to [int instr] (absolute word addresses). *)

type reg = int  (** 0..31 *)

type 'label instr =
  (* three-register ALU, [rd <- rs OP rt] *)
  | Add of reg * reg * reg
  | Sub of reg * reg * reg
  | And of reg * reg * reg
  | Or of reg * reg * reg
  | Xor of reg * reg * reg
  | Nor of reg * reg * reg
  | Slt of reg * reg * reg  (** signed set-on-less-than *)
  | Sltu of reg * reg * reg
  | Mul of reg * reg * reg  (** low 32 bits of the product *)
  | Div of reg * reg * reg  (** signed quotient, truncated; x/0 = 0 *)
  | Rem of reg * reg * reg  (** signed remainder; x rem 0 = x *)
  | Sllv of reg * reg * reg  (** shift left by register (mod 32) *)
  | Srlv of reg * reg * reg
  | Srav of reg * reg * reg
  (* immediate ALU, [rd <- rs OP imm]; immediates are sign-extended 16-bit
     except the logical ops, which zero-extend *)
  | Addi of reg * reg * int
  | Andi of reg * reg * int
  | Ori of reg * reg * int
  | Xori of reg * reg * int
  | Slti of reg * reg * int
  | Sltiu of reg * reg * int
  | Lui of reg * int  (** rd <- imm lsl 16 *)
  | Sll of reg * reg * int  (** shift by 5-bit constant *)
  | Srl of reg * reg * int
  | Sra of reg * reg * int
  (* word memory, [Lw (rd, rs, off)]: rd <- mem[rs + off] *)
  | Lw of reg * reg * int
  | Sw of reg * reg * int  (** mem[rs + off] <- rd *)
  (* control; targets are word addresses in instruction space *)
  | Beq of reg * reg * 'label
  | Bne of reg * reg * 'label
  | Blt of reg * reg * 'label  (** signed *)
  | Bge of reg * reg * 'label  (** signed *)
  | Bltu of reg * reg * 'label
  | Bgeu of reg * reg * 'label
  | J of 'label
  | Jal of 'label  (** link register 31 <- return address *)
  | Jr of reg
  | Nop
  | Halt

(** An assembled program: instructions at word addresses 0, 1, 2, ... *)
type program = int instr array

(** [map_label f instr] rewrites the branch target, if any. *)
val map_label : ('a -> 'b) -> 'a instr -> 'b instr

(** [validate_registers instr] raises [Invalid_argument] if any register
    field is outside 0..31. *)
val validate_registers : 'a instr -> unit

(** [mnemonic instr] is the lower-case opcode name, for diagnostics. *)
val mnemonic : 'a instr -> string

(** [pp_instr fmt instr] prints assembler-like syntax for a resolved
    instruction, e.g. [addi $t0, $zero, 42] or [beq $t0, $t1, 17]. *)
val pp_instr : Format.formatter -> int instr -> unit

(** [register_name r] is the MIPS o32 conventional name ($zero, $t0...). *)
val register_name : reg -> string
