type item = Label of string | Instr of string Isa.instr | Comment of string

let label name = Label name

let i instr = Instr instr

let comment text = Comment text

let concat = List.concat

let assemble items =
  let table = Hashtbl.create 64 in
  let next = ref 0 in
  List.iter
    (fun item ->
      match item with
      | Label name ->
        if Hashtbl.mem table name then failwith (Printf.sprintf "Asm: duplicate label %S" name);
        Hashtbl.add table name !next
      | Instr instr ->
        Isa.validate_registers instr;
        incr next
      | Comment _ -> ())
    items;
  let resolve name =
    match Hashtbl.find_opt table name with
    | Some addr -> addr
    | None -> failwith (Printf.sprintf "Asm: undefined label %S" name)
  in
  let out = Array.make !next Isa.Nop in
  let pc = ref 0 in
  List.iter
    (fun item ->
      match item with
      | Label _ | Comment _ -> ()
      | Instr instr ->
        out.(!pc) <- Isa.map_label resolve instr;
        incr pc)
    items;
  out

(* MIPS o32 register numbering *)
let zero = 0
let at = 1
let v0 = 2
let v1 = 3
let a0 = 4
let a1 = 5
let a2 = 6
let a3 = 7
let t0 = 8
let t1 = 9
let t2 = 10
let t3 = 11
let t4 = 12
let t5 = 13
let t6 = 14
let t7 = 15
let s0 = 16
let s1 = 17
let s2 = 18
let s3 = 19
let s4 = 20
let s5 = 21
let s6 = 22
let s7 = 23
let t8 = 24
let t9 = 25
let gp = 28
let sp = 29
let fp = 30
let ra = 31

let li rd value =
  if value >= -32768 && value < 32768 then [ Instr (Isa.Addi (rd, zero, value)) ]
  else begin
    let v = value land 0xFFFFFFFF in
    let hi = (v lsr 16) land 0xFFFF in
    let lo = v land 0xFFFF in
    if lo = 0 then [ Instr (Isa.Lui (rd, hi)) ]
    else [ Instr (Isa.Lui (rd, hi)); Instr (Isa.Ori (rd, rd, lo)) ]
  end

let move rd rs = Instr (Isa.Add (rd, rs, zero))
