(** Text assembler.

    Parses a small MIPS-like assembly dialect into {!Asm.item} lists so
    programs can live in [.s] files instead of the OCaml eDSL:

    {v
    # comment          (also ';' and '//')
    loop:              # labels end with ':'
      addi $t0, $t0, -1
      lw   $v0, 3($sp) # memory operands are off($base)
      li   $a0, 0xDEADBEEF   # pseudo: expands to lui/ori
      move $s0, $v0          # pseudo: add $s0, $v0, $zero
      bne  $t0, $zero, loop
      halt
    v}

    Registers are written [$name] (MIPS o32 names) or [$0]..[$31];
    immediates are decimal or 0x-hexadecimal. Errors raise [Failure]
    with the offending line number. *)

(** [parse source] assembles a whole source text into items. *)
val parse : string -> Asm.item list

(** [parse_file path] reads and parses a file. *)
val parse_file : string -> Asm.item list

(** [parse_register token] resolves a [$...] register token (exposed for
    tools). *)
val parse_register : string -> Isa.reg
