(* Layout: [op:6][rd:5][rs:5][rt:5][unused:11] for R-type,
   [op:6][rd:5][rs:5][imm:16] for I-type and branches (imm = absolute
   target for branches), [op:6][target:26] for J/Jal. *)

let op_add = 0
let op_sub = 1
let op_and = 2
let op_or = 3
let op_xor = 4
let op_nor = 5
let op_slt = 6
let op_sltu = 7
let op_mul = 8
let op_div = 9
let op_rem = 10
let op_sllv = 11
let op_srlv = 12
let op_srav = 13
let op_addi = 14
let op_andi = 15
let op_ori = 16
let op_xori = 17
let op_slti = 18
let op_sltiu = 19
let op_lui = 20
let op_sll = 21
let op_srl = 22
let op_sra = 23
let op_lw = 24
let op_sw = 25
let op_beq = 26
let op_bne = 27
let op_blt = 28
let op_bge = 29
let op_bltu = 30
let op_bgeu = 31
let op_j = 32
let op_jal = 33
let op_jr = 34
let op_nop = 35
let op_halt = 36

let check_signed16 imm =
  if imm < -32768 || imm > 32767 then
    invalid_arg (Printf.sprintf "Encode: immediate %d exceeds 16 signed bits" imm);
  imm land 0xFFFF

let check_unsigned16 imm =
  if imm < 0 || imm > 65535 then
    invalid_arg (Printf.sprintf "Encode: immediate %d exceeds 16 unsigned bits" imm);
  imm

let check_target26 t =
  if t < 0 || t >= 1 lsl 26 then
    invalid_arg (Printf.sprintf "Encode: jump target %d exceeds 26 bits" t);
  t

let r_type op rd rs rt = (op lsl 26) lor (rd lsl 21) lor (rs lsl 16) lor (rt lsl 11)

let i_type op rd rs imm16 = (op lsl 26) lor (rd lsl 21) lor (rs lsl 16) lor imm16

let encode instr =
  Isa.validate_registers instr;
  match instr with
  | Isa.Add (d, s, t) -> r_type op_add d s t
  | Isa.Sub (d, s, t) -> r_type op_sub d s t
  | Isa.And (d, s, t) -> r_type op_and d s t
  | Isa.Or (d, s, t) -> r_type op_or d s t
  | Isa.Xor (d, s, t) -> r_type op_xor d s t
  | Isa.Nor (d, s, t) -> r_type op_nor d s t
  | Isa.Slt (d, s, t) -> r_type op_slt d s t
  | Isa.Sltu (d, s, t) -> r_type op_sltu d s t
  | Isa.Mul (d, s, t) -> r_type op_mul d s t
  | Isa.Div (d, s, t) -> r_type op_div d s t
  | Isa.Rem (d, s, t) -> r_type op_rem d s t
  | Isa.Sllv (d, s, t) -> r_type op_sllv d s t
  | Isa.Srlv (d, s, t) -> r_type op_srlv d s t
  | Isa.Srav (d, s, t) -> r_type op_srav d s t
  | Isa.Addi (d, s, imm) -> i_type op_addi d s (check_signed16 imm)
  | Isa.Andi (d, s, imm) -> i_type op_andi d s (check_unsigned16 imm)
  | Isa.Ori (d, s, imm) -> i_type op_ori d s (check_unsigned16 imm)
  | Isa.Xori (d, s, imm) -> i_type op_xori d s (check_unsigned16 imm)
  | Isa.Slti (d, s, imm) -> i_type op_slti d s (check_signed16 imm)
  | Isa.Sltiu (d, s, imm) -> i_type op_sltiu d s (check_signed16 imm)
  | Isa.Lui (d, imm) -> i_type op_lui d 0 (check_unsigned16 imm)
  | Isa.Sll (d, s, sh) -> i_type op_sll d s (check_unsigned16 sh)
  | Isa.Srl (d, s, sh) -> i_type op_srl d s (check_unsigned16 sh)
  | Isa.Sra (d, s, sh) -> i_type op_sra d s (check_unsigned16 sh)
  | Isa.Lw (d, s, off) -> i_type op_lw d s (check_signed16 off)
  | Isa.Sw (d, s, off) -> i_type op_sw d s (check_signed16 off)
  | Isa.Beq (a, b, l) -> i_type op_beq a b (check_unsigned16 l)
  | Isa.Bne (a, b, l) -> i_type op_bne a b (check_unsigned16 l)
  | Isa.Blt (a, b, l) -> i_type op_blt a b (check_unsigned16 l)
  | Isa.Bge (a, b, l) -> i_type op_bge a b (check_unsigned16 l)
  | Isa.Bltu (a, b, l) -> i_type op_bltu a b (check_unsigned16 l)
  | Isa.Bgeu (a, b, l) -> i_type op_bgeu a b (check_unsigned16 l)
  | Isa.J l -> (op_j lsl 26) lor check_target26 l
  | Isa.Jal l -> (op_jal lsl 26) lor check_target26 l
  | Isa.Jr r -> r_type op_jr r 0 0
  | Isa.Nop -> op_nop lsl 26
  | Isa.Halt -> op_halt lsl 26

let sign_extend16 imm = if imm >= 32768 then imm - 65536 else imm

let decode word =
  let op = (word lsr 26) land 0x3F in
  let rd = (word lsr 21) land 0x1F in
  let rs = (word lsr 16) land 0x1F in
  let rt = (word lsr 11) land 0x1F in
  let imm = word land 0xFFFF in
  let simm = sign_extend16 imm in
  let target = word land 0x3FFFFFF in
  if op = op_add then Isa.Add (rd, rs, rt)
  else if op = op_sub then Isa.Sub (rd, rs, rt)
  else if op = op_and then Isa.And (rd, rs, rt)
  else if op = op_or then Isa.Or (rd, rs, rt)
  else if op = op_xor then Isa.Xor (rd, rs, rt)
  else if op = op_nor then Isa.Nor (rd, rs, rt)
  else if op = op_slt then Isa.Slt (rd, rs, rt)
  else if op = op_sltu then Isa.Sltu (rd, rs, rt)
  else if op = op_mul then Isa.Mul (rd, rs, rt)
  else if op = op_div then Isa.Div (rd, rs, rt)
  else if op = op_rem then Isa.Rem (rd, rs, rt)
  else if op = op_sllv then Isa.Sllv (rd, rs, rt)
  else if op = op_srlv then Isa.Srlv (rd, rs, rt)
  else if op = op_srav then Isa.Srav (rd, rs, rt)
  else if op = op_addi then Isa.Addi (rd, rs, simm)
  else if op = op_andi then Isa.Andi (rd, rs, imm)
  else if op = op_ori then Isa.Ori (rd, rs, imm)
  else if op = op_xori then Isa.Xori (rd, rs, imm)
  else if op = op_slti then Isa.Slti (rd, rs, simm)
  else if op = op_sltiu then Isa.Sltiu (rd, rs, simm)
  else if op = op_lui then Isa.Lui (rd, imm)
  else if op = op_sll then Isa.Sll (rd, rs, imm)
  else if op = op_srl then Isa.Srl (rd, rs, imm)
  else if op = op_sra then Isa.Sra (rd, rs, imm)
  else if op = op_lw then Isa.Lw (rd, rs, simm)
  else if op = op_sw then Isa.Sw (rd, rs, simm)
  else if op = op_beq then Isa.Beq (rd, rs, imm)
  else if op = op_bne then Isa.Bne (rd, rs, imm)
  else if op = op_blt then Isa.Blt (rd, rs, imm)
  else if op = op_bge then Isa.Bge (rd, rs, imm)
  else if op = op_bltu then Isa.Bltu (rd, rs, imm)
  else if op = op_bgeu then Isa.Bgeu (rd, rs, imm)
  else if op = op_j then Isa.J target
  else if op = op_jal then Isa.Jal target
  else if op = op_jr then Isa.Jr rd
  else if op = op_nop then Isa.Nop
  else if op = op_halt then Isa.Halt
  else invalid_arg (Printf.sprintf "Encode.decode: unknown opcode %d" op)

let encode_program p = Array.map encode p

let decode_program words = Array.map decode words
