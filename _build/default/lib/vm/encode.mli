(** Binary instruction encoding.

    A fixed 32-bit format (opcode in the top 6 bits, register fields of 5
    bits, 16-bit immediates / absolute branch targets, 26-bit jump
    targets). The interpreter executes the structured form directly; the
    encoder exists so programs have a faithful binary image — it is what
    gives instruction addresses their meaning — and is round-trip tested.

    Immediates must fit in 16 signed (arithmetic/memory) or unsigned
    (logical) bits, branch targets in 16 bits, jump targets in 26 bits;
    [encode] raises [Invalid_argument] otherwise. *)

(** [encode instr] is the 32-bit word for a resolved instruction. *)
val encode : int Isa.instr -> int

(** [decode word] inverts {!encode}. Raises [Invalid_argument] on an
    unknown opcode. *)
val decode : int -> int Isa.instr

(** [encode_program p] encodes every instruction. *)
val encode_program : Isa.program -> int array

(** [decode_program words] decodes a binary image. *)
val decode_program : int array -> Isa.program
