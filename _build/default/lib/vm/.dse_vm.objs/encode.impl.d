lib/vm/encode.ml: Array Isa Printf
