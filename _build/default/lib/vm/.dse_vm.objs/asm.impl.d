lib/vm/asm.ml: Array Hashtbl Isa List Printf
