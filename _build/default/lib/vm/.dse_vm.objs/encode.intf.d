lib/vm/encode.mli: Isa
