lib/vm/asm_parser.mli: Asm Isa
