lib/vm/machine.ml: Array Encode Isa List Printf Trace
