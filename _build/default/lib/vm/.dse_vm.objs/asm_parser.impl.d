lib/vm/asm_parser.ml: Asm Fun Hashtbl Isa List Printf String
