lib/vm/isa.ml: Format List Printf
