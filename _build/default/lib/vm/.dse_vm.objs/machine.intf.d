lib/vm/machine.mli: Isa Trace
