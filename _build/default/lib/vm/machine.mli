(** The tracing interpreter.

    Plays the role of the paper's instrumented MIPS R3000 simulator:
    executing a program emits one [Fetch] per instruction into the
    instruction trace and one [Read]/[Write] per [Lw]/[Sw] into the data
    trace. Instruction and data memories are separate (Harvard), so the
    two traces use independent word-address spaces — exactly the split
    instruction / data cache setting of the paper's experiments.

    Arithmetic is 32-bit two's complement; register 0 reads as zero and
    ignores writes. *)

exception Fault of string
(** Raised on out-of-range memory accesses, bad PC, or exceeding the step
    budget; the message includes the offending PC. *)

type result = {
  steps : int;  (** instructions executed, including the final [Halt] *)
  registers : int array;  (** 32 entries, sign-extended 32-bit values *)
  memory : int array;  (** final data memory image *)
}

(** [run program] executes from PC 0 until [Halt].

    @param mem_words data memory size (default 65536)
    @param init list of [(base, values)] segments copied into data memory
           before execution
    @param max_steps fault budget (default 30 million)
    @param itrace if given, every instruction fetch is appended to it
    @param dtrace if given, every data read/write is appended to it *)
val run :
  ?mem_words:int ->
  ?init:(int * int array) list ->
  ?max_steps:int ->
  ?itrace:Trace.t ->
  ?dtrace:Trace.t ->
  Isa.program ->
  result

(** [run_encoded words] decodes a binary program image (see {!Encode})
    and executes it; options as in {!run}. *)
val run_encoded :
  ?mem_words:int ->
  ?init:(int * int array) list ->
  ?max_steps:int ->
  ?itrace:Trace.t ->
  ?dtrace:Trace.t ->
  int array ->
  result

(** [return_value result] is the final value of register [v0] (2) — the
    benchmark checksum convention. *)
val return_value : result -> int

(** [sign32 x] normalises an int to signed 32-bit two's complement. *)
val sign32 : int -> int
