(** Assembler eDSL.

    Programs are OCaml lists of items — instructions (with string branch
    labels) and label definitions — assembled into an {!Isa.program} by
    resolving every label to its absolute word address.

    Register conventions follow MIPS o32 naming ([zero], [v0], [a0]–[a3],
    [t0]–[t9], [s0]–[s7], [sp], [ra]); only the zero-wiring of register 0
    is enforced by the machine, the rest is convention. *)

type item

(** [label name] defines [name] at the address of the next instruction. *)
val label : string -> item

(** [i instr] embeds an instruction with string branch targets. *)
val i : string Isa.instr -> item

(** [comment _] is ignored by the assembler; use it to annotate listings. *)
val comment : string -> item

(** [assemble items] resolves labels. Raises [Failure] on duplicate or
    undefined labels, or out-of-range registers. *)
val assemble : item list -> Isa.program

(** [concat blocks] flattens program fragments. *)
val concat : item list list -> item list

(** {2 Register names} *)

val zero : Isa.reg
val at : Isa.reg
val v0 : Isa.reg
val v1 : Isa.reg
val a0 : Isa.reg
val a1 : Isa.reg
val a2 : Isa.reg
val a3 : Isa.reg
val t0 : Isa.reg
val t1 : Isa.reg
val t2 : Isa.reg
val t3 : Isa.reg
val t4 : Isa.reg
val t5 : Isa.reg
val t6 : Isa.reg
val t7 : Isa.reg
val t8 : Isa.reg
val t9 : Isa.reg
val s0 : Isa.reg
val s1 : Isa.reg
val s2 : Isa.reg
val s3 : Isa.reg
val s4 : Isa.reg
val s5 : Isa.reg
val s6 : Isa.reg
val s7 : Isa.reg
val gp : Isa.reg
val sp : Isa.reg
val fp : Isa.reg
val ra : Isa.reg

(** {2 Pseudo-instructions} *)

(** [li rd value] loads a 32-bit constant (expands to [Lui]/[Ori] or a
    single instruction when the constant is small). *)
val li : Isa.reg -> int -> item list

(** [move rd rs] copies a register. *)
val move : Isa.reg -> Isa.reg -> item
