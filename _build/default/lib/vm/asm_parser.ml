let register_table =
  let pairs =
    [
      ("zero", 0); ("at", 1); ("v0", 2); ("v1", 3); ("a0", 4); ("a1", 5); ("a2", 6);
      ("a3", 7); ("t0", 8); ("t1", 9); ("t2", 10); ("t3", 11); ("t4", 12); ("t5", 13);
      ("t6", 14); ("t7", 15); ("s0", 16); ("s1", 17); ("s2", 18); ("s3", 19); ("s4", 20);
      ("s5", 21); ("s6", 22); ("s7", 23); ("t8", 24); ("t9", 25); ("k0", 26); ("k1", 27);
      ("gp", 28); ("sp", 29); ("fp", 30); ("ra", 31);
    ]
  in
  let table = Hashtbl.create 64 in
  List.iter (fun (name, number) -> Hashtbl.add table name number) pairs;
  table

let parse_register token =
  if String.length token < 2 || token.[0] <> '$' then
    failwith (Printf.sprintf "expected a register, got %S" token)
  else begin
    let name = String.sub token 1 (String.length token - 1) in
    match Hashtbl.find_opt register_table name with
    | Some r -> r
    | None -> (
      match int_of_string_opt name with
      | Some r when r >= 0 && r <= 31 -> r
      | Some _ | None -> failwith (Printf.sprintf "unknown register %S" token))
  end

let parse_immediate token =
  match int_of_string_opt token with
  | Some v -> v
  | None -> failwith (Printf.sprintf "bad immediate %S" token)

(* memory operand: off($base) *)
let parse_memory_operand token =
  match String.index_opt token '(' with
  | Some open_paren when String.length token > 0 && token.[String.length token - 1] = ')' ->
    let offset_text = String.sub token 0 open_paren in
    let base_text = String.sub token (open_paren + 1) (String.length token - open_paren - 2) in
    let offset = if offset_text = "" then 0 else parse_immediate offset_text in
    (parse_register base_text, offset)
  | Some _ | None -> failwith (Printf.sprintf "bad memory operand %S (expected off($reg))" token)

let strip_comment line =
  let cut_at pos = String.sub line 0 pos in
  let candidates =
    List.filter_map
      (fun marker ->
        match marker with
        | `Char c -> String.index_opt line c
        | `Str s ->
          let n = String.length line and m = String.length s in
          let rec scan k =
            if k + m > n then None
            else if String.sub line k m = s then Some k
            else scan (k + 1)
          in
          scan 0)
      [ `Char '#'; `Char ';'; `Str "//" ]
  in
  match candidates with [] -> line | positions -> cut_at (List.fold_left min max_int positions)

let tokenize text =
  String.map (fun c -> if c = ',' || c = '\t' then ' ' else c) text
  |> String.split_on_char ' '
  |> List.filter (fun s -> s <> "")

let instruction_of_tokens tokens =
  let reg = parse_register and imm = parse_immediate in
  match tokens with
  | [ "add"; d; s; t ] -> [ Asm.i (Isa.Add (reg d, reg s, reg t)) ]
  | [ "sub"; d; s; t ] -> [ Asm.i (Isa.Sub (reg d, reg s, reg t)) ]
  | [ "and"; d; s; t ] -> [ Asm.i (Isa.And (reg d, reg s, reg t)) ]
  | [ "or"; d; s; t ] -> [ Asm.i (Isa.Or (reg d, reg s, reg t)) ]
  | [ "xor"; d; s; t ] -> [ Asm.i (Isa.Xor (reg d, reg s, reg t)) ]
  | [ "nor"; d; s; t ] -> [ Asm.i (Isa.Nor (reg d, reg s, reg t)) ]
  | [ "slt"; d; s; t ] -> [ Asm.i (Isa.Slt (reg d, reg s, reg t)) ]
  | [ "sltu"; d; s; t ] -> [ Asm.i (Isa.Sltu (reg d, reg s, reg t)) ]
  | [ "mul"; d; s; t ] -> [ Asm.i (Isa.Mul (reg d, reg s, reg t)) ]
  | [ "div"; d; s; t ] -> [ Asm.i (Isa.Div (reg d, reg s, reg t)) ]
  | [ "rem"; d; s; t ] -> [ Asm.i (Isa.Rem (reg d, reg s, reg t)) ]
  | [ "sllv"; d; s; t ] -> [ Asm.i (Isa.Sllv (reg d, reg s, reg t)) ]
  | [ "srlv"; d; s; t ] -> [ Asm.i (Isa.Srlv (reg d, reg s, reg t)) ]
  | [ "srav"; d; s; t ] -> [ Asm.i (Isa.Srav (reg d, reg s, reg t)) ]
  | [ "addi"; d; s; v ] -> [ Asm.i (Isa.Addi (reg d, reg s, imm v)) ]
  | [ "andi"; d; s; v ] -> [ Asm.i (Isa.Andi (reg d, reg s, imm v)) ]
  | [ "ori"; d; s; v ] -> [ Asm.i (Isa.Ori (reg d, reg s, imm v)) ]
  | [ "xori"; d; s; v ] -> [ Asm.i (Isa.Xori (reg d, reg s, imm v)) ]
  | [ "slti"; d; s; v ] -> [ Asm.i (Isa.Slti (reg d, reg s, imm v)) ]
  | [ "sltiu"; d; s; v ] -> [ Asm.i (Isa.Sltiu (reg d, reg s, imm v)) ]
  | [ "lui"; d; v ] -> [ Asm.i (Isa.Lui (reg d, imm v)) ]
  | [ "sll"; d; s; v ] -> [ Asm.i (Isa.Sll (reg d, reg s, imm v)) ]
  | [ "srl"; d; s; v ] -> [ Asm.i (Isa.Srl (reg d, reg s, imm v)) ]
  | [ "sra"; d; s; v ] -> [ Asm.i (Isa.Sra (reg d, reg s, imm v)) ]
  | [ "lw"; d; mem ] ->
    let base, offset = parse_memory_operand mem in
    [ Asm.i (Isa.Lw (reg d, base, offset)) ]
  | [ "sw"; d; mem ] ->
    let base, offset = parse_memory_operand mem in
    [ Asm.i (Isa.Sw (reg d, base, offset)) ]
  | [ "beq"; a; b; target ] -> [ Asm.i (Isa.Beq (reg a, reg b, target)) ]
  | [ "bne"; a; b; target ] -> [ Asm.i (Isa.Bne (reg a, reg b, target)) ]
  | [ "blt"; a; b; target ] -> [ Asm.i (Isa.Blt (reg a, reg b, target)) ]
  | [ "bge"; a; b; target ] -> [ Asm.i (Isa.Bge (reg a, reg b, target)) ]
  | [ "bltu"; a; b; target ] -> [ Asm.i (Isa.Bltu (reg a, reg b, target)) ]
  | [ "bgeu"; a; b; target ] -> [ Asm.i (Isa.Bgeu (reg a, reg b, target)) ]
  | [ "j"; target ] -> [ Asm.i (Isa.J target) ]
  | [ "jal"; target ] -> [ Asm.i (Isa.Jal target) ]
  | [ "jr"; r ] -> [ Asm.i (Isa.Jr (reg r)) ]
  | [ "nop" ] -> [ Asm.i Isa.Nop ]
  | [ "halt" ] -> [ Asm.i Isa.Halt ]
  (* pseudo-instructions *)
  | [ "li"; d; v ] -> Asm.li (reg d) (imm v)
  | [ "move"; d; s ] -> [ Asm.move (reg d) (reg s) ]
  | mnemonic :: _ -> failwith (Printf.sprintf "unknown or malformed instruction %S" mnemonic)
  | [] -> []

let parse_line ~line_number line =
  let fail msg = failwith (Printf.sprintf "line %d: %s" line_number msg) in
  let text = String.trim (strip_comment line) in
  if text = "" then []
  else begin
    (* split off any leading "label:" prefixes *)
    let rec split_labels text acc =
      match String.index_opt text ':' with
      | Some colon
        when String.for_all
               (fun c -> c = '_' || c = '.' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9'))
               (String.trim (String.sub text 0 colon)) ->
        let name = String.trim (String.sub text 0 colon) in
        if name = "" then fail "empty label"
        else
          split_labels
            (String.sub text (colon + 1) (String.length text - colon - 1))
            (Asm.label name :: acc)
      | Some _ | None -> (List.rev acc, String.trim text)
    in
    let labels, rest = split_labels text [] in
    let instructions =
      if rest = "" then []
      else try instruction_of_tokens (tokenize rest) with Failure msg -> fail msg
    in
    labels @ instructions
  end

let parse source =
  String.split_on_char '\n' source
  |> List.mapi (fun index line -> parse_line ~line_number:(index + 1) line)
  |> List.concat

let parse_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let size = in_channel_length ic in
      parse (really_input_string ic size))
