(** Cost-aware instance selection — combining the paper's optimal
    (depth, associativity) set with the cost models, in the direction its
    conclusion sketches ("bus architecture and other system-on-a-chip
    artifacts").

    For a trace and a miss budget K the analytical model yields one
    minimal instance per depth; each is costed without simulation (the
    model's miss counts are exact for LRU), and the Pareto-optimal subset
    under (energy, time, area) is returned. *)

type point = {
  depth : int;
  associativity : int;
  size_words : int;
  misses : int;  (** non-cold misses, analytical *)
  totals : System_cost.totals;
}

(** [candidates ?line_words trace ~k] is one costed instance per depth,
    each meeting the budget [k]. *)
val candidates : ?line_words:int -> Trace.t -> k:int -> point list

(** [frontier points] is the subset not dominated in (energy, time,
    area), in increasing area order. A point dominates another when it is
    no worse on all three metrics and strictly better on at least one. *)
val frontier : point list -> point list

(** [dominates a b] is the dominance relation used by {!frontier}. *)
val dominates : point -> point -> bool

val pp_point : Format.formatter -> point -> unit
