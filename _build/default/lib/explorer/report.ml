let pp_instances fmt (table : Analytical_dse.table) =
  Format.fprintf fmt "@[<v>%s (N=%d, N'=%d, max misses=%d)@," table.name
    table.stats.Stats.n table.stats.Stats.n_unique table.stats.Stats.max_misses;
  Format.fprintf fmt "%-8s" "depth";
  List.iter (fun p -> Format.fprintf fmt " %6d%%" p) table.percents;
  Format.fprintf fmt "@,";
  List.iter
    (fun (depth, assocs) ->
      Format.fprintf fmt "%-8d" depth;
      List.iter (fun a -> Format.fprintf fmt " %7d" a) assocs;
      Format.fprintf fmt "@,")
    table.rows;
  Format.fprintf fmt "@]"

let pp_stats_row fmt (name, stats) =
  Format.fprintf fmt "%-10s %10d %10d %12d" name stats.Stats.n stats.Stats.n_unique
    stats.Stats.max_misses

let pp_stats_table fmt rows =
  Format.fprintf fmt "@[<v>%-10s %10s %10s %12s@," "benchmark" "N" "N'" "max misses";
  List.iter (fun row -> Format.fprintf fmt "%a@," pp_stats_row row) rows;
  Format.fprintf fmt "@]"

let instances_to_csv (table : Analytical_dse.table) =
  let buffer = Buffer.create 256 in
  Buffer.add_string buffer "depth";
  List.iter (fun p -> Buffer.add_string buffer (Printf.sprintf ",%d%%" p)) table.percents;
  Buffer.add_char buffer '\n';
  List.iter
    (fun (depth, assocs) ->
      Buffer.add_string buffer (string_of_int depth);
      List.iter (fun a -> Buffer.add_string buffer (Printf.sprintf ",%d" a)) assocs;
      Buffer.add_char buffer '\n')
    table.rows;
  Buffer.contents buffer
