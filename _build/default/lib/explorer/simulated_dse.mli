(** The traditional flow of the paper's Figure 1(a): find cache instances
    by repeated simulation. Two baselines are provided — the naive
    simulate-per-configuration loop, and the smarter Mattson one-pass
    variant the paper cites as prior art [16][17]. Both serve as oracles
    for the analytical model and as speed baselines for the benchmarks. *)

(** [min_associativity_exhaustive trace ~depth ~k] simulates LRU caches of
    increasing associativity until the non-cold misses drop to [k] or
    below, returning the associativity (Figure 1(a)'s tune-and-resimulate
    loop). *)
val min_associativity_exhaustive : Trace.t -> depth:int -> k:int -> int

(** [min_associativity_one_pass trace ~depth ~k] answers the same
    question from a single Mattson stack simulation of that depth. *)
val min_associativity_one_pass : Trace.t -> depth:int -> k:int -> int

(** [table_one_pass ?percents ?max_level ~name trace] builds the same
    table as {!Analytical_dse.run} purely by simulation. *)
val table_one_pass :
  ?percents:int list -> ?max_level:int -> name:string -> Trace.t -> Analytical_dse.table

(** [non_cold_misses trace ~depth ~associativity] is the simulator's
    non-cold miss count for one LRU configuration (line = 1 word). *)
val non_cold_misses : Trace.t -> depth:int -> associativity:int -> int
