(** Split-cache codesign: partitioning one system-level miss budget
    between the instruction and the data cache.

    The paper tunes each cache against its own budget; at system level
    the designer has a single tolerable miss total (misses cost the same
    bus transaction whichever cache they come from). Because the prelude
    is computed once per trace and each budget is a cheap postlude pass,
    sweeping the split is practically free — the kind of question the
    analytical formulation answers and a simulator cannot without a
    quadratic number of runs. *)

type instance = { depth : int; associativity : int; size_words : int }

type split = {
  k_instruction : int;
  k_data : int;
  instruction : instance;  (** smallest instance meeting [k_instruction] *)
  data : instance;  (** smallest instance meeting [k_data] *)
  total_size : int;
}

(** [smallest_instance prepared ~k] is the minimum-size (depth x ways)
    instance meeting budget [k] for an analysed trace. *)
val smallest_instance : Analytical.prepared -> k:int -> instance

(** [partition ?steps ~itrace ~dtrace ~k_total ()] sweeps [steps + 1]
    budget splits (default 20) and returns the one minimising the summed
    cache size; ties break toward giving the instruction cache less. *)
val partition : ?steps:int -> itrace:Trace.t -> dtrace:Trace.t -> k_total:int -> unit -> split

(** [sweep ?steps ~itrace ~dtrace ~k_total ()] exposes every candidate
    split in sweep order, for reporting. *)
val sweep :
  ?steps:int -> itrace:Trace.t -> dtrace:Trace.t -> k_total:int -> unit -> split list

val pp_split : Format.formatter -> split -> unit
