(** Cross-validation of the analytical model against the simulators.

    The paper's guarantee is that the computed (depth, associativity)
    pairs incur at most K non-cold misses; because the model is exact for
    LRU (line size one word), the analytical and simulated minimum
    associativities must in fact agree everywhere. *)

type mismatch = {
  depth : int;
  percent : int;
  analytical : int;
  simulated : int;
}

type outcome = {
  checked : int;  (** (depth, budget) points compared *)
  mismatches : mismatch list;
}

(** [tables analytical simulated] compares two instance tables row by
    row; raises [Invalid_argument] if their shapes differ. *)
val tables : Analytical_dse.table -> Analytical_dse.table -> outcome

(** [trace ?percents ?max_level trace] builds both tables for a trace and
    compares them. *)
val trace : ?percents:int list -> ?max_level:int -> Trace.t -> outcome

(** [agree outcome] holds when there are no mismatches. *)
val agree : outcome -> bool

val pp : Format.formatter -> outcome -> unit
