lib/explorer/timing.ml: Analytical_dse List Stats Sys Unix
