lib/explorer/hierarchy_dse.ml: Analytical_dse Cache Trace
