lib/explorer/report.ml: Analytical_dse Buffer Format List Printf Stats
