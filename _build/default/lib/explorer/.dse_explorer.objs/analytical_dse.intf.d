lib/explorer/analytical_dse.mli: Stats Trace
