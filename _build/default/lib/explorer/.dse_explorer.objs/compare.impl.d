lib/explorer/compare.ml: Analytical_dse Format List Simulated_dse
