lib/explorer/timing.mli: Trace
