lib/explorer/simulated_dse.ml: Analytical_dse Cache Config List Stack_sim Stats
