lib/explorer/codesign.mli: Analytical Format Trace
