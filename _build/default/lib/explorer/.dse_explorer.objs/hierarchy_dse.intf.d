lib/explorer/hierarchy_dse.mli: Analytical_dse Cache Config Trace
