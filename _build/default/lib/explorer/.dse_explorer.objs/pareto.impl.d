lib/explorer/pareto.ml: Analytical Array Bus_cost Config Format List Optimizer Strip System_cost Trace
