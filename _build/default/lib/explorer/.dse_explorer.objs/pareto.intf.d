lib/explorer/pareto.mli: Format System_cost Trace
