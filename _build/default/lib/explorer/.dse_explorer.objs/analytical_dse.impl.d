lib/explorer/analytical_dse.ml: Analytical Array List Optimizer Stats
