lib/explorer/report.mli: Analytical_dse Format Stats
