lib/explorer/codesign.ml: Analytical Array Format List Optimizer
