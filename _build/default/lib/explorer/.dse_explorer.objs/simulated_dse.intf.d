lib/explorer/simulated_dse.mli: Analytical_dse Trace
