lib/explorer/compare.mli: Analytical_dse Format Trace
