let non_cold_misses trace ~depth ~associativity =
  let config = Config.make ~depth ~associativity () in
  (Cache.simulate config trace).Cache.misses

let min_associativity_exhaustive trace ~depth ~k =
  let rec search associativity =
    if non_cold_misses trace ~depth ~associativity <= k then associativity
    else search (associativity + 1)
  in
  search 1

let min_associativity_one_pass trace ~depth ~k =
  let result = Stack_sim.run ~depth trace in
  Stack_sim.min_associativity result ~budget:k

let table_one_pass ?(percents = [ 5; 10; 15; 20 ]) ?max_level ~name trace =
  let stats = Stats.compute trace in
  let max_level =
    match max_level with
    | None -> stats.Stats.address_bits
    | Some m -> max 0 (min m stats.Stats.address_bits)
  in
  let budgets = List.map (fun percent -> Stats.budget stats ~percent) percents in
  let rows =
    List.init (max_level + 1) (fun level ->
        let depth = 1 lsl level in
        let result = Stack_sim.run ~depth trace in
        let assocs = List.map (fun k -> Stack_sim.min_associativity result ~budget:k) budgets in
        (depth, assocs))
  in
  { Analytical_dse.name; stats; percents; budgets; rows }
