type result = {
  l1i_stats : Cache.stats;
  l1d_stats : Cache.stats;
  l2_stream : Trace.t;
  table : Analytical_dse.table;
}

(* Same Harvard disambiguation bit as Hierarchy. *)
let instruction_space_bit = 1 lsl 28

let proportional_merge a b =
  let merged = Trace.create ~capacity:(Trace.length a + Trace.length b) () in
  let na = Trace.length a and nb = Trace.length b in
  let ia = ref 0 and ib = ref 0 in
  while !ia < na || !ib < nb do
    let take_a =
      if !ia >= na then false else if !ib >= nb then true else !ia * nb <= !ib * na
    in
    if take_a then begin
      let acc = Trace.get a !ia in
      Trace.add merged ~addr:acc.Trace.addr ~kind:acc.Trace.kind;
      incr ia
    end
    else begin
      let acc = Trace.get b !ib in
      Trace.add merged ~addr:acc.Trace.addr ~kind:acc.Trace.kind;
      incr ib
    end
  done;
  merged

let explore ~l1i ~l1d ~itrace ~dtrace ?percents ?max_level () =
  let l1i_stats, i_misses = Cache.miss_stream l1i itrace in
  let l1d_stats, d_misses = Cache.miss_stream l1d dtrace in
  let tagged_i = Trace.create ~capacity:(Trace.length i_misses) () in
  Trace.iter
    (fun (a : Trace.access) ->
      Trace.add tagged_i ~addr:(a.Trace.addr lor instruction_space_bit) ~kind:a.Trace.kind)
    i_misses;
  let l2_stream = proportional_merge tagged_i d_misses in
  let table = Analytical_dse.run ?percents ?max_level ~name:"L2" l2_stream in
  { l1i_stats; l1d_stats; l2_stream; table }
