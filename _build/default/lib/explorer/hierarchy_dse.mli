(** Second-level exploration: applying the analytical model to the L2.

    Fix the (analytically chosen) L1 caches, collect the stream of L1
    misses — the reference stream the L2 actually sees — and run the
    paper's machinery on *that* trace. The composition stays exact: the
    L2 is an ordinary LRU cache over its own reference stream, so every
    (depth, associativity) answer carries the same guarantee as at
    level 1. Instruction and data miss streams are disambiguated in the
    unified L2's address space exactly as {!Hierarchy} does. *)

type result = {
  l1i_stats : Cache.stats;
  l1d_stats : Cache.stats;
  l2_stream : Trace.t;  (** the merged L1 miss stream the L2 sees *)
  table : Analytical_dse.table;  (** analytical L2 instances over that stream *)
}

(** [explore ~l1i ~l1d ~itrace ~dtrace ?percents ?max_level ()] runs both
    L1s, merges their miss streams (in program order approximated by
    proportional interleave, as in {!Hierarchy.simulate_split}), and
    analyses the L2 space. *)
val explore :
  l1i:Config.t ->
  l1d:Config.t ->
  itrace:Trace.t ->
  dtrace:Trace.t ->
  ?percents:int list ->
  ?max_level:int ->
  unit ->
  result
