type mismatch = { depth : int; percent : int; analytical : int; simulated : int }

type outcome = { checked : int; mismatches : mismatch list }

let tables (a : Analytical_dse.table) (s : Analytical_dse.table) =
  if a.percents <> s.percents || List.map fst a.rows <> List.map fst s.rows then
    invalid_arg "Compare.tables: table shapes differ";
  let checked = ref 0 in
  let mismatches = ref [] in
  List.iter2
    (fun (depth, assocs_a) (_, assocs_s) ->
      List.iteri
        (fun idx assoc_a ->
          let assoc_s = List.nth assocs_s idx in
          incr checked;
          if assoc_a <> assoc_s then
            mismatches :=
              {
                depth;
                percent = List.nth a.percents idx;
                analytical = assoc_a;
                simulated = assoc_s;
              }
              :: !mismatches)
        assocs_a)
    a.rows s.rows;
  { checked = !checked; mismatches = List.rev !mismatches }

let trace ?percents ?max_level t =
  let analytical = Analytical_dse.run ?percents ?max_level ~name:"analytical" t in
  let simulated = Simulated_dse.table_one_pass ?percents ?max_level ~name:"simulated" t in
  tables analytical simulated

let agree outcome = outcome.mismatches = []

let pp fmt outcome =
  if agree outcome then Format.fprintf fmt "agree on all %d points" outcome.checked
  else begin
    Format.fprintf fmt "@[<v>%d mismatches out of %d points:@,"
      (List.length outcome.mismatches) outcome.checked;
    List.iter
      (fun m ->
        Format.fprintf fmt "depth=%d K=%d%%: analytical=%d simulated=%d@," m.depth
          m.percent m.analytical m.simulated)
      outcome.mismatches;
    Format.fprintf fmt "@]"
  end
