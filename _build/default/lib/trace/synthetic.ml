let check_positive name v = if v <= 0 then invalid_arg ("Synthetic: " ^ name ^ " must be positive")

let sequential ~start ~length =
  check_positive "length" length;
  Trace.of_addresses (Array.init length (fun k -> start + k))

let loop ~base ~body ~iterations =
  check_positive "body" body;
  check_positive "iterations" iterations;
  let trace = Trace.create ~capacity:(body * iterations) () in
  for _it = 1 to iterations do
    for offset = 0 to body - 1 do
      Trace.add trace ~addr:(base + offset) ~kind:Trace.Fetch
    done
  done;
  trace

let strided ~base ~stride ~count ~iterations =
  check_positive "stride" stride;
  check_positive "count" count;
  check_positive "iterations" iterations;
  let trace = Trace.create ~capacity:(count * iterations) () in
  for _it = 1 to iterations do
    for k = 0 to count - 1 do
      Trace.add trace ~addr:(base + (k * stride)) ~kind:Trace.Read
    done
  done;
  trace

(* Small deterministic xorshift so the generators do not depend on the
   global Random state. *)
let next_random state =
  let x = !state in
  let x = x lxor (x lsl 13) in
  let x = x lxor (x lsr 7) in
  let x = x lxor (x lsl 17) in
  let x = x land max_int in
  state := if x = 0 then 88172645463325252 else x;
  !state

let hot_cold ~seed ~hot ~cold ~hot_percent ~length =
  check_positive "hot" hot;
  check_positive "cold" cold;
  check_positive "length" length;
  if hot_percent < 0 || hot_percent > 100 then
    invalid_arg "Synthetic: hot_percent must be within 0..100";
  let state = ref (seed lor 1) in
  let trace = Trace.create ~capacity:length () in
  for _k = 1 to length do
    let roll = next_random state mod 100 in
    let addr =
      if roll < hot_percent then next_random state mod hot
      else hot + (next_random state mod cold)
    in
    Trace.add trace ~addr ~kind:Trace.Read
  done;
  trace

let uniform ~seed ~span ~length =
  check_positive "span" span;
  check_positive "length" length;
  let state = ref (seed lor 1) in
  let trace = Trace.create ~capacity:length () in
  for _k = 1 to length do
    Trace.add trace ~addr:(next_random state mod span) ~kind:Trace.Read
  done;
  trace
