type t = { n : int; n_unique : int; address_bits : int; max_misses : int }

let compute_stripped (s : Strip.t) =
  let n = Strip.num_refs s in
  let n_unique = Strip.num_unique s in
  (* Depth-1 direct-mapped: a miss whenever the id changes between
     consecutive accesses, plus the very first access; cold misses are one
     per unique id. *)
  let total_misses = ref 0 in
  for i = 0 to n - 1 do
    if i = 0 || s.ids.(i) <> s.ids.(i - 1) then incr total_misses
  done;
  {
    n;
    n_unique;
    address_bits = Strip.address_bits s;
    max_misses = max 0 (!total_misses - n_unique);
  }

let compute trace = compute_stripped (Strip.strip trace)

let budget stats ~percent =
  if percent < 0 then invalid_arg "Stats.budget: negative percent";
  stats.max_misses * percent / 100

let pp fmt t =
  Format.fprintf fmt "N=%d N'=%d bits=%d max_misses=%d" t.n t.n_unique
    t.address_bits t.max_misses
