(** Trace statistics as reported in the paper's Tables 5 and 6.

    [max_misses] is the number of non-cold misses of a depth-1
    direct-mapped cache (one line of one word): an access misses exactly
    when its address differs from the immediately preceding access, and
    cold misses (one per unique reference) are subtracted. This matches
    the paper's calibration of the miss budget K. *)

type t = {
  n : int;  (** trace size N *)
  n_unique : int;  (** unique references N' *)
  address_bits : int;
  max_misses : int;  (** non-cold misses of the depth-1 direct-mapped cache *)
}

(** [compute trace] scans the trace once. *)
val compute : Trace.t -> t

(** [compute_stripped stripped] computes the same statistics from an
    already-stripped trace. *)
val compute_stripped : Strip.t -> t

(** [budget stats ~percent] is the miss constraint K for a given percent of
    [max_misses], rounded down (the paper uses 5, 10, 15, 20). *)
val budget : t -> percent:int -> int

val pp : Format.formatter -> t -> unit
