(** Plain-text trace files.

    One access per line: a kind letter ([F] fetch, [R] read, [W] write)
    followed by a hexadecimal word address, e.g. [R 0x1a3f]. Blank lines
    and lines starting with [#] are ignored. This is the on-disk format
    consumed by the [dse] command-line tool. *)

(** [write channel trace] writes the textual form. *)
val write : out_channel -> Trace.t -> unit

(** [read channel] parses a trace. Raises [Failure] with a line number on
    malformed input. *)
val read : in_channel -> Trace.t

(** [save path trace] and [load path] are file-path conveniences. *)
val save : string -> Trace.t -> unit

val load : string -> Trace.t

(** {2 Binary format}

    A compact binary form for large traces: the magic bytes ["DSET"], a
    length, then one variable-width record per access (kind packed into
    the low bits). Both formats round-trip losslessly. *)

val write_binary : out_channel -> Trace.t -> unit

(** [read_binary channel] raises [Failure] on a bad magic or a truncated
    stream. *)
val read_binary : in_channel -> Trace.t

val save_binary : string -> Trace.t -> unit

val load_binary : string -> Trace.t

(** {2 Dinero import}

    [read_dinero channel] parses the classic Dinero/din format: one
    access per line, a numeric label (0 read, 1 write, 2 instruction
    fetch) followed by a hex address. Blank lines are ignored. *)
val read_dinero : in_channel -> Trace.t

val load_dinero : string -> Trace.t
