lib/trace/trace_io.ml: Fun List Printf String Trace
