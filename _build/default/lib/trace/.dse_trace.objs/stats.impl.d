lib/trace/stats.ml: Array Format Strip
