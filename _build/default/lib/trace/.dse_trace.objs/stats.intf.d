lib/trace/stats.mli: Format Strip Trace
