lib/trace/synthetic.ml: Array Trace
