lib/trace/reduce.mli: Trace
