lib/trace/trace.ml: Array Bytes Format List Printf
