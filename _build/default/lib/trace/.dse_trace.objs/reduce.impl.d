lib/trace/reduce.ml: Array Trace
