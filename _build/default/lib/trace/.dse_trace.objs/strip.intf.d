lib/trace/strip.mli: Trace
