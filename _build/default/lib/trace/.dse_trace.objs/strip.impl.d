lib/trace/strip.ml: Array Hashtbl List Trace
