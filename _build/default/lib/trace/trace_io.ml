let write channel trace =
  Trace.iter
    (fun (a : Trace.access) ->
      let letter =
        match a.kind with Trace.Fetch -> 'F' | Trace.Read -> 'R' | Trace.Write -> 'W'
      in
      Printf.fprintf channel "%c 0x%x\n" letter a.addr)
    trace

let parse_line ~line_number line trace =
  let line = String.trim line in
  if line = "" || line.[0] = '#' then ()
  else
    let fail msg = failwith (Printf.sprintf "trace line %d: %s" line_number msg) in
    match String.split_on_char ' ' line |> List.filter (fun s -> s <> "") with
    | [ k; a ] ->
      let kind =
        match k with
        | "F" | "f" -> Trace.Fetch
        | "R" | "r" -> Trace.Read
        | "W" | "w" -> Trace.Write
        | _ -> fail (Printf.sprintf "unknown access kind %S" k)
      in
      let addr =
        match int_of_string_opt a with
        | Some v when v >= 0 -> v
        | Some _ -> fail "negative address"
        | None -> fail (Printf.sprintf "bad address %S" a)
      in
      Trace.add trace ~addr ~kind
    | _ -> fail "expected '<kind> <address>'"

let read channel =
  let trace = Trace.create () in
  let rec loop line_number =
    match input_line channel with
    | line ->
      parse_line ~line_number line trace;
      loop (line_number + 1)
    | exception End_of_file -> trace
  in
  loop 1

let save path trace =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> write oc trace)

let load path =
  let ic = open_in path in
  Fun.protect ~finally:(fun () -> close_in ic) (fun () -> read ic)

(* Binary format: "DSET", length as LEB128, then per access a LEB128 of
   (addr lsl 2) lor kind_tag. *)

let magic = "DSET"

let kind_tag = function Trace.Fetch -> 0 | Trace.Read -> 1 | Trace.Write -> 2

let kind_of_tag = function
  | 0 -> Trace.Fetch
  | 1 -> Trace.Read
  | 2 -> Trace.Write
  | t -> failwith (Printf.sprintf "binary trace: bad kind tag %d" t)

let write_varint channel value =
  let v = ref value in
  let continue = ref true in
  while !continue do
    let byte = !v land 0x7F in
    v := !v lsr 7;
    if !v = 0 then begin
      output_byte channel byte;
      continue := false
    end
    else output_byte channel (byte lor 0x80)
  done

let read_varint channel =
  let rec loop shift acc =
    match input_byte channel with
    | byte ->
      let acc = acc lor ((byte land 0x7F) lsl shift) in
      if byte land 0x80 = 0 then acc else loop (shift + 7) acc
    | exception End_of_file -> failwith "binary trace: truncated varint"
  in
  loop 0 0

let write_binary channel trace =
  output_string channel magic;
  write_varint channel (Trace.length trace);
  Trace.iter
    (fun (a : Trace.access) -> write_varint channel ((a.Trace.addr lsl 2) lor kind_tag a.Trace.kind))
    trace

let read_binary channel =
  let header = really_input_string channel (String.length magic) in
  if header <> magic then failwith "binary trace: bad magic";
  let length = read_varint channel in
  let trace = Trace.create ~capacity:(max 1 length) () in
  for _k = 1 to length do
    let record = read_varint channel in
    Trace.add trace ~addr:(record lsr 2) ~kind:(kind_of_tag (record land 3))
  done;
  trace

let save_binary path trace =
  let oc = open_out_bin path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> write_binary oc trace)

let load_binary path =
  let ic = open_in_bin path in
  Fun.protect ~finally:(fun () -> close_in ic) (fun () -> read_binary ic)

(* Dinero/din format: "<label> <hex-addr>"; labels 0 read, 1 write, 2
   instruction fetch. *)

let parse_dinero_line ~line_number line trace =
  let line = String.trim line in
  if line = "" then ()
  else
    let fail msg = failwith (Printf.sprintf "dinero line %d: %s" line_number msg) in
    match String.split_on_char ' ' line |> List.filter (fun s -> s <> "") with
    | [ l; a ] ->
      let kind =
        match l with
        | "0" -> Trace.Read
        | "1" -> Trace.Write
        | "2" -> Trace.Fetch
        | _ -> fail (Printf.sprintf "unknown label %S" l)
      in
      let addr =
        match int_of_string_opt ("0x" ^ a) with
        | Some v when v >= 0 -> v
        | Some _ | None -> (
          (* some din files already carry a 0x prefix *)
          match int_of_string_opt a with
          | Some v when v >= 0 -> v
          | Some _ | None -> fail (Printf.sprintf "bad address %S" a))
      in
      Trace.add trace ~addr ~kind
    | _ -> fail "expected '<label> <address>'"

let read_dinero channel =
  let trace = Trace.create () in
  let rec loop line_number =
    match input_line channel with
    | line ->
      parse_dinero_line ~line_number line trace;
      loop (line_number + 1)
    | exception End_of_file -> trace
  in
  loop 1

let load_dinero path =
  let ic = open_in path in
  Fun.protect ~finally:(fun () -> close_in ic) (fun () -> read_dinero ic)
