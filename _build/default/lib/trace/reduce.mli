(** Trace stripping by cache filtering (the paper's related work
    [14][15]: Wu & Wolf; also Puzak's classic trace reduction).

    References that hit in a direct-mapped filter cache of depth [F]
    also hit in every LRU cache of depth >= F (with the same line size):
    the deeper cache's rows refine the filter's rows, so a reference with
    no same-row intruder since its previous occurrence in the filter has
    none in the deeper cache either. Moreover, deleting such a hit
    changes no other reference's set of *distinct* same-row conflictors
    (the deleted occurrence's predecessor already lies inside any window
    that contained it). Hence the stripped trace is {e provably
    identical} — in total and non-cold miss counts — to the original for
    every cache with depth >= F at any associativity, while often being
    much shorter. The test suite checks this equivalence against both
    the simulator and the analytical model. *)

type result = {
  reduced : Trace.t;
  original_length : int;
  filter_hits : int;  (** references removed *)
}

(** [filter ~depth ?line_words trace] strips [trace] through a
    direct-mapped filter cache of [depth] rows. [depth] and [line_words]
    (default 1) must be positive powers of two. Guarantees hold for
    caches of depth >= [depth] and the same line size. *)
val filter : depth:int -> ?line_words:int -> Trace.t -> result

(** [reduction_ratio r] is [length reduced / original_length] (1.0 for an
    empty original). *)
val reduction_ratio : result -> float
