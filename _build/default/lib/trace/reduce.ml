type result = { reduced : Trace.t; original_length : int; filter_hits : int }

let filter ~depth ?(line_words = 1) trace =
  let power_of_two n = n > 0 && n land (n - 1) = 0 in
  if not (power_of_two depth) then
    invalid_arg "Reduce.filter: depth must be a positive power of two";
  if not (power_of_two line_words) then
    invalid_arg "Reduce.filter: line_words must be a positive power of two";
  let offset_bits =
    let rec log2 n acc = if n <= 1 then acc else log2 (n lsr 1) (acc + 1) in
    log2 line_words 0
  in
  (* rows.(i) holds the line currently cached in filter row i, -1 when
     empty — a plain direct-mapped filter. *)
  let rows = Array.make depth (-1) in
  let reduced = Trace.create () in
  let filter_hits = ref 0 in
  Trace.iter
    (fun (a : Trace.access) ->
      let line = a.Trace.addr lsr offset_bits in
      let row = line land (depth - 1) in
      if rows.(row) = line then incr filter_hits
      else begin
        rows.(row) <- line;
        Trace.add reduced ~addr:a.Trace.addr ~kind:a.Trace.kind
      end)
    trace;
  { reduced; original_length = Trace.length trace; filter_hits = !filter_hits }

let reduction_ratio r =
  if r.original_length = 0 then 1.0
  else float_of_int (Trace.length r.reduced) /. float_of_int r.original_length
