(* Tests for the MiniC compiler: operator semantics, control flow,
   functions and recursion, arrays with bounds checking, error
   reporting, and a property test compiling random constant expressions
   against a reference evaluator. *)

let check_int = Alcotest.(check int)

let check_bool = Alcotest.(check bool)

let run_source source =
  Machine.return_value (Mc_codegen.run (Mc_codegen.compile source))

let returns expected source = check_int "result" expected (run_source source)

let main_returning expr = Printf.sprintf "int main() { return %s; }" expr

(* -- expressions -- *)

let test_arithmetic () =
  returns 7 (main_returning "3 + 4");
  returns (-1) (main_returning "3 - 4");
  returns 12 (main_returning "3 * 4");
  returns 3 (main_returning "7 / 2");
  returns (-3) (main_returning "-7 / 2");
  returns 1 (main_returning "7 % 2");
  returns (-1) (main_returning "-7 % 2");
  returns 20 (main_returning "2 + 3 * 6");
  returns 30 (main_returning "(2 + 3) * 6")

let test_bitwise () =
  returns 0b1000 (main_returning "12 & 10");
  returns 0b1110 (main_returning "12 | 10");
  returns 0b0110 (main_returning "12 ^ 10");
  returns 40 (main_returning "5 << 3");
  returns 5 (main_returning "40 >> 3");
  returns (-1) (main_returning "-1 >> 4");
  returns (-8) (main_returning "~7")

let test_comparisons () =
  returns 1 (main_returning "3 < 4");
  returns 0 (main_returning "4 < 3");
  returns 1 (main_returning "4 <= 4");
  returns 1 (main_returning "5 > 4");
  returns 0 (main_returning "4 >= 5");
  returns 1 (main_returning "4 == 4");
  returns 1 (main_returning "4 != 5");
  returns 1 (main_returning "-1 < 0")

let test_logical () =
  returns 1 (main_returning "1 && 2");
  returns 0 (main_returning "0 && 1");
  returns 1 (main_returning "0 || 3");
  returns 0 (main_returning "0 || 0");
  returns 1 (main_returning "!0");
  returns 0 (main_returning "!7");
  returns (-5) (main_returning "-(2 + 3)")

let test_short_circuit () =
  (* the right operand must not run when the left decides *)
  returns 42
    {|
    int touched;
    int poke() { touched = 1; return 1; }
    int main() {
      int ok;
      ok = 0 && poke();
      ok = 1 || poke();
      if (touched == 0) { return 42; }
      return 0;
    }
    |}

let test_wrap_semantics () =
  returns (-2147483648) (main_returning "2147483647 + 1");
  returns 0 (main_returning "65536 * 65536");
  returns 1 (main_returning "0x10001 & 1")

(* -- control flow and functions -- *)

let test_if_else_chain () =
  returns 2
    {|
    int classify(int x) {
      if (x < 0) { return 0; }
      else if (x == 0) { return 1; }
      else { return 2; }
    }
    int main() { return classify(5); }
    |}

let test_while_loop () =
  returns 5050
    {|
    int main() {
      int total;
      int i;
      i = 1;
      while (i <= 100) { total = total + i; i = i + 1; }
      return total;
    }
    |}

let test_locals_zero_initialised () =
  returns 0 "int main() { int x; return x; }"

let test_recursion () =
  returns 6765
    {|
    int fib(int n) {
      if (n < 2) { return n; }
      return fib(n - 1) + fib(n - 2);
    }
    int main() { return fib(20); }
    |}

let test_mutual_recursion () =
  returns 1
    {|
    int main() { return is_even(10); }
    int is_even(int n) { if (n == 0) { return 1; } return is_odd(n - 1); }
    int is_odd(int n) { if (n == 0) { return 0; } return is_even(n - 1); }
    |}

let test_four_arguments () =
  returns 1234
    {|
    int mix(int a, int b, int c, int d) { return a * 1000 + b * 100 + c * 10 + d; }
    int main() { return mix(1, 2, 3, 4); }
    |}

let test_fall_off_returns_zero () =
  returns 0 "int main() { int x; x = 5; }"

let test_for_loop () =
  returns 5050
    {|
    int main() {
      int total;
      int i;
      for (i = 1; i <= 100; i = i + 1) { total = total + i; }
      return total;
    }
    |};
  (* empty condition means forever; break terminates *)
  returns 10
    {|
    int main() {
      int i;
      for (;;) {
        i = i + 1;
        if (i == 10) { break; }
      }
      return i;
    }
    |}

let test_break_continue () =
  returns 2550
    {|
    int main() {
      int total;
      int i;
      for (i = 1; i <= 100; i = i + 1) {
        if (i % 2 == 1) { continue; }
        total = total + i;
      }
      return total;
    }
    |};
  returns 7
    {|
    int main() {
      int i;
      i = 0;
      while (1) {
        i = i + 1;
        if (i >= 7) { break; }
      }
      return i;
    }
    |};
  (* continue in a for-loop still runs the update clause *)
  returns 100
    {|
    int main() {
      int i;
      int n;
      for (i = 0; i < 100; i = i + 1) { continue; }
      n = i;
      return n;
    }
    |}

let test_break_outside_loop_rejected () =
  check_bool "break" true
    (match Mc_codegen.compile "int main() { break; return 0; }" with
    | _ -> false
    | exception Failure _ -> true);
  check_bool "continue" true
    (match Mc_codegen.compile "int main() { continue; return 0; }" with
    | _ -> false
    | exception Failure _ -> true)

let test_nested_loop_break () =
  returns 45
    {|
    int main() {
      int i; int j; int total;
      for (i = 0; i < 10; i = i + 1) {
        for (j = 0; j < 10; j = j + 1) {
          if (j > i) { break; }
          total = total + 1;
        }
      }
      return total - 10;
    }
    |}

(* -- globals and arrays -- *)

let test_globals () =
  returns 30
    {|
    int a;
    int b;
    int set() { a = 10; b = 20; return 0; }
    int main() { set(); return a + b; }
    |}

let test_arrays () =
  returns 285
    {|
    int squares[10];
    int main() {
      int i;
      int total;
      i = 0;
      while (i < 10) { squares[i] = i * i; i = i + 1; }
      i = 0;
      while (i < 10) { total = total + squares[i]; i = i + 1; }
      return total;
    }
    |}

let test_bounds_trap () =
  let source = "int a[4]; int main() { return a[7]; }" in
  check_int "trap code" Mc_codegen.bounds_trap_code (run_source source);
  let negative = "int a[4]; int main() { return a[0 - 1]; }" in
  check_int "negative index traps" Mc_codegen.bounds_trap_code (run_source negative)

let test_bounds_disabled () =
  let source = "int a[4]; int b; int main() { b = 9; return a[4]; }" in
  let compiled = Mc_codegen.compile ~bounds_checks:false source in
  (* a[4] is b in the global layout: no trap, reads 9 *)
  check_int "reads past the array" 9 (Machine.return_value (Mc_codegen.run compiled))

let test_global_layout () =
  let compiled = Mc_codegen.compile "int a[3]; int b; int main() { return 0; }" in
  check_bool "layout" true
    (compiled.Mc_codegen.globals = [ ("a", 0, 3); ("b", 3, 1) ]);
  check_int "total words" 4 compiled.Mc_codegen.globals_words

(* -- errors -- *)

let fails_with fragment source =
  match Mc_codegen.compile source with
  | _ -> false
  | exception Failure msg ->
    let n = String.length msg and m = String.length fragment in
    let rec scan k = k + m <= n && (String.sub msg k m = fragment || scan (k + 1)) in
    scan 0

let test_errors () =
  check_bool "missing main" true (fails_with "no main" "int f() { return 1; }");
  check_bool "unknown variable" true (fails_with "unknown variable" "int main() { return x; }");
  check_bool "unknown function" true (fails_with "undefined function" "int main() { return f(); }");
  check_bool "arity" true
    (fails_with "expects" "int f(int x) { return x; } int main() { return f(); }");
  check_bool "duplicate global" true (fails_with "duplicate global" "int a; int a; int main() { return 0; }");
  check_bool "duplicate function" true
    (fails_with "duplicate function" "int f() { return 0; } int f() { return 1; } int main() { return 0; }");
  check_bool "duplicate local" true
    (fails_with "duplicate local" "int main() { int x; int x; return 0; }");
  check_bool "five parameters" true
    (fails_with "more than 4"
       "int f(int a, int b, int c, int d, int e) { return 0; } int main() { return 0; }");
  check_bool "array as scalar" true
    (fails_with "without an index" "int a[3]; int main() { return a; }");
  check_bool "scalar indexed" true
    (fails_with "is not an array" "int a; int main() { return a[0]; }");
  check_bool "assign to expression" true
    (match Mc_codegen.compile "int main() { 1 + 2 = 3; return 0; }" with
    | _ -> false
    | exception Failure _ -> true);
  check_bool "parse error" true
    (match Mc_codegen.compile "int main() { return 1 +; }" with
    | _ -> false
    | exception Failure _ -> true);
  check_bool "lexer error" true
    (match Mc_codegen.compile "int main() { return `; }" with
    | _ -> false
    | exception Failure _ -> true)

let test_main_with_args_rejected () =
  check_bool "main arity" true
    (fails_with "main must take no arguments" "int main(int x) { return x; }")

let test_comments_and_hex () =
  returns 255
    {|
    /* block
       comment */
    int main() {
      // line comment
      return 0xF0 | 0x0F;
    }
    |}

(* -- traces -- *)

let test_traces_nonempty () =
  let compiled =
    Mc_codegen.compile
      {|
      int a[64];
      int main() {
        int i;
        i = 0;
        while (i < 64) { a[i] = i; i = i + 1; }
        return a[63];
      }
      |}
  in
  let itrace, dtrace = Mc_codegen.traces compiled in
  check_bool "instruction trace" true (Trace.length itrace > 100);
  check_bool "data trace has writes" true
    (Trace.to_list dtrace |> List.exists (fun a -> Trace.equal_kind Trace.Write a.Trace.kind));
  (* the compiled code must also round-trip the binary encoder *)
  check_bool "encodes" true
    (Encode.decode_program (Encode.encode_program compiled.Mc_codegen.program)
    = compiled.Mc_codegen.program)

(* -- property: random constant expressions -- *)

let rec eval_reference expr =
  match expr with
  | Mc_ast.Int v -> W32.sign32 v
  | Mc_ast.Unary (Mc_ast.Neg, e) -> W32.sub 0 (eval_reference e)
  | Mc_ast.Unary (Mc_ast.Not, e) -> if eval_reference e = 0 then 1 else 0
  | Mc_ast.Unary (Mc_ast.Bit_not, e) -> W32.sign32 (lnot (eval_reference e))
  | Mc_ast.Binary (op, l, r) ->
    let a = eval_reference l and b = eval_reference r in
    W32.sign32
      (match op with
      | Mc_ast.Add -> W32.add a b
      | Mc_ast.Sub -> W32.sub a b
      | Mc_ast.Mul -> W32.mul a b
      | Mc_ast.Div -> if b = 0 then 0 else a / b
      | Mc_ast.Mod -> if b = 0 then a else a mod b
      | Mc_ast.Bit_and -> a land b
      | Mc_ast.Bit_or -> a lor b
      | Mc_ast.Bit_xor -> a lxor b
      | Mc_ast.Shl -> W32.sll a (b land 31)
      | Mc_ast.Shr -> W32.sra a (b land 31)
      | Mc_ast.Lt -> if a < b then 1 else 0
      | Mc_ast.Le -> if a <= b then 1 else 0
      | Mc_ast.Gt -> if a > b then 1 else 0
      | Mc_ast.Ge -> if a >= b then 1 else 0
      | Mc_ast.Eq -> if a = b then 1 else 0
      | Mc_ast.Ne -> if a <> b then 1 else 0
      | Mc_ast.And -> if a <> 0 && b <> 0 then 1 else 0
      | Mc_ast.Or -> if a <> 0 || b <> 0 then 1 else 0)
  | Mc_ast.Var _ | Mc_ast.Index _ | Mc_ast.Call _ -> assert false

let rec render expr =
  match expr with
  | Mc_ast.Int v -> if v < 0 then Printf.sprintf "(0 - %d)" (-v) else string_of_int v
  | Mc_ast.Unary (op, e) ->
    let symbol = match op with Mc_ast.Neg -> "-" | Mc_ast.Not -> "!" | Mc_ast.Bit_not -> "~" in
    Printf.sprintf "(%s%s)" symbol (render e)
  | Mc_ast.Binary (op, l, r) ->
    Printf.sprintf "(%s %s %s)" (render l) (Format.asprintf "%a" Mc_ast.pp_binop op) (render r)
  | Mc_ast.Var _ | Mc_ast.Index _ | Mc_ast.Call _ -> assert false

let gen_expr =
  let open QCheck2.Gen in
  let leaf = map (fun v -> Mc_ast.Int v) (int_range (-1000) 1000) in
  let unop = oneofl [ Mc_ast.Neg; Mc_ast.Not; Mc_ast.Bit_not ] in
  let binop =
    oneofl
      Mc_ast.
        [
          Add; Sub; Mul; Div; Mod; Bit_and; Bit_or; Bit_xor; Lt; Le; Gt; Ge; Eq; Ne; And;
          Or;
        ]
  in
  let shift_amount = map (fun v -> Mc_ast.Int v) (int_range 0 31) in
  sized (fun size ->
      fix
        (fun self size ->
          if size <= 1 then leaf
          else
            oneof
              [
                leaf;
                map2 (fun op e -> Mc_ast.Unary (op, e)) unop (self (size / 2));
                map3
                  (fun op l r -> Mc_ast.Binary (op, l, r))
                  binop (self (size / 2)) (self (size / 2));
                map2
                  (fun l r -> Mc_ast.Binary (Mc_ast.Shl, l, r))
                  (self (size / 2)) shift_amount;
                map2
                  (fun l r -> Mc_ast.Binary (Mc_ast.Shr, l, r))
                  (self (size / 2)) shift_amount;
              ])
        (min size 12))

let test_stack_balanced_after_main () =
  (* the machine must return with $sp restored to the startup stack top:
     every push in the generated code is matched *)
  let compiled =
    Mc_codegen.compile
      {|
      int a[16];
      int helper(int x, int y) { return (x + y) * (x - y); }
      int main() {
        int i;
        for (i = 0; i < 16; i = i + 1) { a[i] = helper(i, i / 2); }
        return a[15];
      }
      |}
  in
  let result = Mc_codegen.run compiled in
  check_int "sp restored" (compiled.Mc_codegen.mem_words - 8) result.Machine.registers.(29)

let prop_lexer_never_crashes =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:300 ~name:"random input raises Failure, never crashes"
       QCheck2.Gen.(string_size ~gen:(char_range ' ' '~') (int_bound 80))
       (fun junk ->
         match Mc_codegen.compile junk with
         | _ -> true
         | exception Failure _ -> true
         | exception _ -> false))

let prop_compiled_equals_reference =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:200 ~name:"compiled constant expressions match reference"
       gen_expr (fun expr ->
         let source = Printf.sprintf "int main() { return %s; }" (render expr) in
         run_source source = eval_reference expr))

let suites =
  [
    ( "minic:expressions",
      [
        Alcotest.test_case "arithmetic" `Quick test_arithmetic;
        Alcotest.test_case "bitwise" `Quick test_bitwise;
        Alcotest.test_case "comparisons" `Quick test_comparisons;
        Alcotest.test_case "logical" `Quick test_logical;
        Alcotest.test_case "short-circuit" `Quick test_short_circuit;
        Alcotest.test_case "32-bit wrap" `Quick test_wrap_semantics;
        Alcotest.test_case "comments and hex" `Quick test_comments_and_hex;
        prop_compiled_equals_reference;
      ] );
    ( "minic:control",
      [
        Alcotest.test_case "if/else chain" `Quick test_if_else_chain;
        Alcotest.test_case "while" `Quick test_while_loop;
        Alcotest.test_case "locals zeroed" `Quick test_locals_zero_initialised;
        Alcotest.test_case "recursion" `Quick test_recursion;
        Alcotest.test_case "mutual recursion" `Quick test_mutual_recursion;
        Alcotest.test_case "four arguments" `Quick test_four_arguments;
        Alcotest.test_case "fall-off returns zero" `Quick test_fall_off_returns_zero;
        Alcotest.test_case "for loops" `Quick test_for_loop;
        Alcotest.test_case "break/continue" `Quick test_break_continue;
        Alcotest.test_case "break outside loop rejected" `Quick test_break_outside_loop_rejected;
        Alcotest.test_case "nested loop break" `Quick test_nested_loop_break;
      ] );
    ( "minic:data",
      [
        Alcotest.test_case "globals" `Quick test_globals;
        Alcotest.test_case "arrays" `Quick test_arrays;
        Alcotest.test_case "bounds trap" `Quick test_bounds_trap;
        Alcotest.test_case "bounds disabled" `Quick test_bounds_disabled;
        Alcotest.test_case "global layout" `Quick test_global_layout;
        Alcotest.test_case "traces" `Quick test_traces_nonempty;
        Alcotest.test_case "stack balanced" `Quick test_stack_balanced_after_main;
        prop_lexer_never_crashes;
      ] );
    (
      "minic:errors",
      [
        Alcotest.test_case "diagnostics" `Quick test_errors;
        Alcotest.test_case "main arity" `Quick test_main_with_args_rejected;
      ] );
  ]
