(* Tests for the benchmark suite: every kernel's VM checksum must equal
   its native reference, and the traces must be well-formed workloads
   (non-trivial size, real data reuse). *)

let check_int = Alcotest.(check int)

let check_bool = Alcotest.(check bool)

let checksum_case (b : Workload.t) =
  Alcotest.test_case (b.Workload.name ^ " checksum = reference") `Quick (fun () ->
      check_int "checksum" (b.Workload.reference ()) (Workload.checksum b))

let trace_shape_case (b : Workload.t) =
  Alcotest.test_case (b.Workload.name ^ " traces well-formed") `Quick (fun () ->
      let itrace, dtrace = Workload.traces b in
      let istats = Stats.compute itrace and dstats = Stats.compute dtrace in
      check_bool "instruction trace non-trivial" true (istats.Stats.n > 1000);
      check_bool "data trace non-trivial" true (dstats.Stats.n >= 500);
      check_bool "instruction reuse" true (istats.Stats.n_unique < istats.Stats.n);
      check_bool "data reuse" true (dstats.Stats.n_unique < dstats.Stats.n);
      check_bool "instruction conflicts exist" true (istats.Stats.max_misses > 0);
      check_bool "data conflicts exist" true (dstats.Stats.max_misses > 0);
      check_bool "fetch kinds only" true
        (Trace.to_list itrace |> List.for_all (fun a -> Trace.equal_kind Trace.Fetch a.Trace.kind));
      check_bool "data kinds only" true
        (Trace.to_list dtrace |> List.for_all Trace.is_data))

let test_registry_complete () =
  Alcotest.(check (list string))
    "the paper's 12 benchmarks"
    [
      "adpcm"; "bcnt"; "blit"; "compress"; "crc"; "des"; "engine"; "fir"; "g3fax";
      "pocsag"; "qurt"; "ucbqsort";
    ]
    Registry.names

let test_registry_find () =
  check_bool "find" true ((Registry.find "crc").Workload.name = "crc");
  Alcotest.check_raises "missing" Not_found (fun () -> ignore (Registry.find "nope"))

let test_traces_deterministic () =
  let b = Registry.find "fir" in
  let i1, d1 = Workload.traces b in
  let i2, d2 = Workload.traces b in
  check_bool "instruction traces equal" true
    (Trace.addresses i1 = Trace.addresses i2);
  check_bool "data traces equal" true (Trace.addresses d1 = Trace.addresses d2)

(* Regression: qurt's r2 root array must not be clobbered by the call
   stack (they once overlapped). *)
let test_qurt_stack_separation () =
  let b = Registry.find "qurt" in
  let result = Workload.run b in
  (* the r2 array ends at 1999 and the stack grows down from 2040; the
     gap 2000..2036 must stay untouched, proving the stack never reaches
     the data (it once did). *)
  let gap_clean = ref true in
  for addr = 2000 to 2036 do
    if result.Machine.memory.(addr) <> 0 then gap_clean := false
  done;
  check_bool "gap between roots and stack untouched" true !gap_clean;
  check_int "checksum" (b.Workload.reference ()) (Machine.return_value result)

let test_benchmarks_halt_within_budget () =
  List.iter
    (fun (b : Workload.t) ->
      let result = Workload.run b in
      check_bool (b.Workload.name ^ " steps below budget") true
        (result.Machine.steps < b.Workload.max_steps))
    Registry.all

let test_programs_encode () =
  (* every benchmark program must fit the binary instruction format *)
  List.iter
    (fun (b : Workload.t) ->
      let program = Asm.assemble b.Workload.program in
      let recovered = Encode.decode_program (Encode.encode_program program) in
      check_bool (b.Workload.name ^ " encodes") true (recovered = program))
    Registry.all

let test_data_gen_deterministic () =
  check_bool "lcg" true (Data_gen.lcg_stream ~seed:1 16 = Data_gen.lcg_stream ~seed:1 16);
  check_bool "uniform bounds" true
    (Array.for_all (fun v -> v >= 0 && v < 17) (Data_gen.uniform ~seed:3 ~bound:17 500));
  check_bool "waveform bounded" true
    (Array.for_all (fun v -> v >= -30000 && v <= 30000) (Data_gen.waveform ~seed:5 500));
  check_bool "text bytes" true
    (Array.for_all (fun v -> v >= 0 && v < 256) (Data_gen.text_like ~seed:7 500))

let test_runs_bitstream_shape () =
  let words, nibbles = Data_gen.runs_bitstream ~seed:9 ~lines:3 ~width:50 in
  check_bool "words sized" true (Array.length words = (nibbles + 7) / 8);
  (* decoding the stream must yield exactly lines * width pixels *)
  let total = ref 0 in
  let run = ref 0 in
  for idx = 0 to nibbles - 1 do
    let nib = (words.(idx / 8) lsr (4 * (idx mod 8))) land 0xF in
    if nib = 15 then run := !run + 15
    else begin
      total := !total + !run + nib;
      run := 0
    end
  done;
  check_int "pixels" (3 * 50) !total

let test_scaled_variants () =
  (* a sample of kernels at scale 2: checksums must match the scaled
     references, names must carry the suffix, traces must grow *)
  List.iter
    (fun (make : scale:int -> Workload.t) ->
      let base = make ~scale:1 in
      let doubled = make ~scale:2 in
      check_int (doubled.Workload.name ^ " checksum") (doubled.Workload.reference ())
        (Workload.checksum doubled);
      check_bool "name suffixed" true
        (doubled.Workload.name = base.Workload.name ^ "@2");
      let n trace = Trace.length trace in
      let _, d1 = Workload.traces base in
      let _, d2 = Workload.traces doubled in
      check_bool (base.Workload.name ^ " data trace grows") true (n d2 > n d1))
    [ Fir.make; Engine.make; Qurt.make; Compress.make ]

let test_scaled_registry () =
  check_int "suite size" 12 (List.length (Registry.scaled 2));
  check_bool "scale 1 names match" true
    (List.map (fun (b : Workload.t) -> b.Workload.name) (Registry.scaled 1) = Registry.names)

let test_scale_validation () =
  Alcotest.check_raises "fir" (Invalid_argument "Fir.make: scale must be >= 1") (fun () ->
      ignore (Fir.make ~scale:0))

let test_w32_ops () =
  check_int "sign32 wrap" (-2147483648) (W32.sign32 0x80000000);
  check_int "sign32 id" 5 (W32.sign32 5);
  check_int "u32 of negative" 0xFFFFFFFF (W32.u32 (-1));
  check_int "add wraps" (-2147483648) (W32.add 0x7FFFFFFF 1);
  check_int "mul wraps" 0 (W32.mul 0x10000 0x10000);
  check_int "srl" 0x7FFFFFFF (W32.srl (-1) 1);
  check_int "sra" (-1) (W32.sra (-1) 1);
  check_int "sll wrap" (-2147483648) (W32.sll 1 31)

let suites =
  [
    ("powerstone:checksums", List.map checksum_case Registry.all);
    ("powerstone:traces", List.map trace_shape_case Registry.all);
    ( "powerstone:infrastructure",
      [
        Alcotest.test_case "registry complete" `Quick test_registry_complete;
        Alcotest.test_case "registry find" `Quick test_registry_find;
        Alcotest.test_case "traces deterministic" `Quick test_traces_deterministic;
        Alcotest.test_case "qurt stack separation" `Quick test_qurt_stack_separation;
        Alcotest.test_case "all halt within budget" `Quick test_benchmarks_halt_within_budget;
        Alcotest.test_case "all programs encode" `Quick test_programs_encode;
        Alcotest.test_case "data generation deterministic" `Quick test_data_gen_deterministic;
        Alcotest.test_case "runs bitstream decodes to full lines" `Quick test_runs_bitstream_shape;
        Alcotest.test_case "scaled variants" `Slow test_scaled_variants;
        Alcotest.test_case "scaled registry" `Quick test_scaled_registry;
        Alcotest.test_case "scale validation" `Quick test_scale_validation;
        Alcotest.test_case "w32 operations" `Quick test_w32_ops;
      ] );
  ]
