(* Tests for the text assembler. *)

let check_int = Alcotest.(check int)

let check_bool = Alcotest.(check bool)

let run_source ?init source =
  Machine.run ?init (Asm.assemble (Asm_parser.parse source))

let v0_of ?init source = Machine.return_value (run_source ?init source)

let test_basic_program () =
  check_int "value" 42 (v0_of "  li $v0, 42\n  halt\n")

let test_fibonacci_source () =
  let source =
    {|
    # fibonacci(20), iteratively
      li   $t0, 20
      li   $t1, 0
      li   $t2, 1
    loop:
      beq  $t0, $zero, done
      add  $t3, $t1, $t2
      move $t1, $t2
      move $t2, $t3
      addi $t0, $t0, -1
      j    loop
    done:
      move $v0, $t1
      halt
    |}
  in
  check_int "fib 20" 6765 (v0_of source)

let test_memory_operands () =
  let source =
    {|
      lw  $t0, 5($zero)       // read the seed
      sw  $t0, 6($zero)
      lw  $v0, 6($zero)
      halt
    |}
  in
  check_int "value" 99 (v0_of ~init:[ (5, [| 99 |]) ] source)

let test_all_register_syntaxes () =
  check_int "numeric register" 7 (v0_of "  addi $2, $0, 7\n  halt\n");
  check_int "named register" 31 (Asm_parser.parse_register "$ra");
  check_int "numeric" 13 (Asm_parser.parse_register "$13")

let test_pseudo_instructions () =
  check_int "large li" 0x12345678 (v0_of "li $v0, 0x12345678\nhalt\n");
  check_int "negative" (-5) (v0_of "li $v0, -5\nhalt\n")

let test_subroutine () =
  let source =
    {|
    main:
      li  $a0, 6
      jal square
      halt
    square:
      mul $v0, $a0, $a0
      jr  $ra
    |}
  in
  check_int "square" 36 (v0_of source)

let test_comments_and_labels_on_same_line () =
  let source = "start: li $v0, 3 # trailing comment\n j end ; another\nend: halt\n" in
  check_int "value" 3 (v0_of source)

let test_errors () =
  let fails source =
    match Asm_parser.parse source with _ -> false | exception Failure _ -> true
  in
  check_bool "unknown mnemonic" true (fails "frobnicate $t0\n");
  check_bool "bad register" true (fails "add $t0, $t1, $xx\n");
  check_bool "bad register number" true (fails "add $t0, $t1, $32\n");
  check_bool "bad immediate" true (fails "addi $t0, $t1, nope\n");
  check_bool "bad memory operand" true (fails "lw $t0, 5[$t1]\n");
  check_bool "line number in message" true
    (match Asm_parser.parse "nop\nbadop $t0\n" with
    | _ -> false
    | exception Failure msg -> String.contains msg '2')

let test_disassembler_output_reparses () =
  (* non-control instructions printed by the disassembler parse back *)
  let instrs =
    [
      Isa.Add (8, 9, 10); Isa.Addi (2, 0, -5); Isa.Lw (16, 29, 3); Isa.Sw (4, 5, -2);
      Isa.Lui (7, 99); Isa.Sll (3, 4, 5); Isa.Mul (11, 12, 13); Isa.Jr 31; Isa.Nop;
      Isa.Halt;
    ]
  in
  List.iter
    (fun instr ->
      let text = Format.asprintf "%a" Isa.pp_instr instr in
      match Asm_parser.parse text with
      | [ item ] -> check_bool text true (Asm.assemble [ item ] = [| instr |])
      | _ -> Alcotest.fail ("unexpected parse of " ^ text))
    instrs

let suites =
  [
    ( "asm_parser",
      [
        Alcotest.test_case "basic program" `Quick test_basic_program;
        Alcotest.test_case "fibonacci source" `Quick test_fibonacci_source;
        Alcotest.test_case "memory operands" `Quick test_memory_operands;
        Alcotest.test_case "register syntaxes" `Quick test_all_register_syntaxes;
        Alcotest.test_case "pseudo instructions" `Quick test_pseudo_instructions;
        Alcotest.test_case "subroutine" `Quick test_subroutine;
        Alcotest.test_case "labels and comments inline" `Quick
          test_comments_and_labels_on_same_line;
        Alcotest.test_case "errors" `Quick test_errors;
        Alcotest.test_case "disassembler output reparses" `Quick
          test_disassembler_output_reparses;
      ] );
  ]
