test/test_minic.ml: Alcotest Array Encode Format List Machine Mc_ast Mc_codegen Printf QCheck2 QCheck_alcotest String Trace W32
