test/test_powerstone.ml: Alcotest Array Asm Compress Data_gen Encode Engine Fir List Machine Qurt Registry Stats Trace W32 Workload
