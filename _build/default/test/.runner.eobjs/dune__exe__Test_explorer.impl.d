test/test_explorer.ml: Alcotest Analytical Analytical_dse Codesign Compare Format List Paper_example Printf Registry Report Simulated_dse Stats String Timing Workload
