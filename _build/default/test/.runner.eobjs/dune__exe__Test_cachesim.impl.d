test/test_cachesim.ml: Alcotest Array Cache Config Int List QCheck2 QCheck_alcotest Set Stack_sim Trace
