test/test_extensions.ml: Alcotest Analytical Array Cache Config Dfs_optimizer List Mrct Optimizer Parallel_optimizer QCheck2 QCheck_alcotest Reduce Registry Strip Synthetic Trace Workload
