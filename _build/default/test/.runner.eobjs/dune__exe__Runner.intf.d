test/runner.mli:
