test/test_hierarchy.ml: Alcotest Array Cache Config Hierarchy QCheck2 QCheck_alcotest Registry Trace Victim Workload
