test/test_bitset.ml: Alcotest Bitset Format Int List QCheck2 QCheck_alcotest Set
