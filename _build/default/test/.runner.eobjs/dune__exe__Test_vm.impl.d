test/test_vm.ml: Alcotest Array Asm Encode Format Isa List Machine QCheck2 QCheck_alcotest String Trace
