test/paper_example.ml: Trace
