test/test_hierarchy_dse.ml: Alcotest Analytical_dse Cache Config Hierarchy_dse List Printf Registry Trace Workload
