test/test_minic_programs.ml: Alcotest Array Compare List Machine Mc_codegen Mc_programs Stats W32
