test/test_asm_parser.ml: Alcotest Asm Asm_parser Format Isa List Machine String
