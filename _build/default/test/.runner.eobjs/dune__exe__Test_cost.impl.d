test/test_cost.ml: Alcotest Array Bus_cost Cache Cache_cost Config Lazy List Pareto QCheck2 QCheck_alcotest Registry Stats Synthetic System_cost Trace Workload
