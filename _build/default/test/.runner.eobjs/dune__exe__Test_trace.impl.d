test/test_trace.ml: Alcotest Array Cache Config Filename Fun Hashtbl Int List Paper_example QCheck2 QCheck_alcotest Set Stats String Strip Sys Trace Trace_io
