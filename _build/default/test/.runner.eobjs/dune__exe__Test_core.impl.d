test/test_core.ml: Alcotest Analytical Array Bcat Bitset Cache Config Dfs_optimizer Hashtbl Int List Mrct Optimizer Paper_example Printf QCheck2 QCheck_alcotest Set Strip Trace Zero_one
