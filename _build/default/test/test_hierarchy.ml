(* Tests for the two-level hierarchy and the victim-buffer cache. *)

let check_int = Alcotest.(check int)

let check_bool = Alcotest.(check bool)

let l1 depth = Config.make ~depth ~associativity:1 ()

let small_hierarchy () =
  Hierarchy.create ~l1i:(l1 4) ~l1d:(l1 4) ~l2:(Config.make ~depth:64 ~associativity:2 ()) ()

(* -- hierarchy -- *)

let test_routing () =
  let h = small_hierarchy () in
  ignore (Hierarchy.access h ~addr:0 ~kind:Trace.Fetch);
  ignore (Hierarchy.access h ~addr:0 ~kind:Trace.Read);
  ignore (Hierarchy.access h ~addr:1 ~kind:Trace.Write);
  let s = Hierarchy.stats h in
  check_int "fetches to l1i" 1 s.Hierarchy.l1i.Cache.accesses;
  check_int "reads+writes to l1d" 2 s.Hierarchy.l1d.Cache.accesses;
  (* all three were L1 misses, so the L2 saw three fills *)
  check_int "l2 fills" 3 s.Hierarchy.l2.Cache.accesses

let test_l2_filters_hits () =
  let h = small_hierarchy () in
  for _round = 1 to 10 do
    ignore (Hierarchy.access h ~addr:7 ~kind:Trace.Read)
  done;
  let s = Hierarchy.stats h in
  check_int "one l2 access only" 1 s.Hierarchy.l2.Cache.accesses;
  check_int "nine l1 hits" 9 s.Hierarchy.l1d.Cache.hits

let test_harvard_separation () =
  (* same numeric address as fetch and read must not alias in the L2 *)
  let h = small_hierarchy () in
  ignore (Hierarchy.access h ~addr:5 ~kind:Trace.Fetch);
  ignore (Hierarchy.access h ~addr:5 ~kind:Trace.Read);
  let s = Hierarchy.stats h in
  check_int "two distinct l2 cold misses" 2 s.Hierarchy.l2.Cache.cold_misses

let test_l2_absorbs_l1_conflicts () =
  (* addresses 0 and 4 thrash a depth-4 L1 but coexist in the L2 *)
  let h = small_hierarchy () in
  for _round = 1 to 50 do
    ignore (Hierarchy.access h ~addr:0 ~kind:Trace.Read);
    ignore (Hierarchy.access h ~addr:4 ~kind:Trace.Read)
  done;
  let s = Hierarchy.stats h in
  check_int "l1 thrashes" 98 s.Hierarchy.l1d.Cache.misses;
  check_int "l2 serves the ping-pong" 0 s.Hierarchy.l2.Cache.misses;
  check_int "l2 cold only" 2 s.Hierarchy.l2.Cache.cold_misses

let test_simulate_mixed () =
  let trace =
    Trace.of_list
      [
        { Trace.addr = 0; kind = Trace.Fetch };
        { Trace.addr = 0; kind = Trace.Read };
        { Trace.addr = 0; kind = Trace.Fetch };
      ]
  in
  let s =
    Hierarchy.simulate ~l1i:(l1 4) ~l1d:(l1 4) ~l2:(Config.make ~depth:16 ~associativity:1 ())
      trace
  in
  check_int "i hits" 1 s.Hierarchy.l1i.Cache.hits;
  check_int "d accesses" 1 s.Hierarchy.l1d.Cache.accesses

let test_simulate_split_interleave () =
  let itrace = Trace.of_addresses ~kind:Trace.Fetch [| 0; 1; 2; 3 |] in
  let dtrace = Trace.of_addresses [| 9; 10 |] in
  let s =
    Hierarchy.simulate_split ~l1i:(l1 4) ~l1d:(l1 4)
      ~l2:(Config.make ~depth:16 ~associativity:1 ())
      ~itrace ~dtrace
  in
  check_int "all fetches played" 4 s.Hierarchy.l1i.Cache.accesses;
  check_int "all data played" 2 s.Hierarchy.l1d.Cache.accesses

let test_amat () =
  let h = small_hierarchy () in
  ignore (Hierarchy.access h ~addr:0 ~kind:Trace.Read);
  (* 1 access: l1 miss, l2 miss: amat = (1*1 + 1*8 + 1*40) / 1 *)
  check_bool "amat" true (abs_float (Hierarchy.amat (Hierarchy.stats h) -. 49.0) < 1e-9);
  ignore (Hierarchy.access h ~addr:0 ~kind:Trace.Read);
  (* second access hits: (2*1 + 8 + 40) / 2 = 25 *)
  check_bool "amat after hit" true
    (abs_float (Hierarchy.amat (Hierarchy.stats h) -. 25.0) < 1e-9);
  check_bool "empty amat" true
    (Hierarchy.amat
       (Hierarchy.stats (small_hierarchy ()))
    = 1.0)

let test_amat_prefers_good_l1_on_real_trace () =
  let bench = Registry.find "des" in
  let itrace, dtrace = Workload.traces bench in
  let l2 = Config.make ~depth:1024 ~associativity:4 () in
  let amat_for depth_i =
    let s = Hierarchy.simulate_split ~l1i:(l1 depth_i) ~l1d:(l1 256) ~l2 ~itrace ~dtrace in
    Hierarchy.amat s
  in
  check_bool "bigger l1i helps this kernel" true (amat_for 128 < amat_for 2)

(* -- victim buffer -- *)

let test_victim_zero_entries_is_direct_mapped () =
  let trace = Trace.of_addresses [| 0; 4; 0; 4; 0 |] in
  let v = Victim.simulate ~depth:4 ~victim_entries:0 trace in
  let plain = Cache.simulate (Config.make ~depth:4 ~associativity:1 ()) trace in
  check_int "same misses" plain.Cache.misses v.Victim.misses;
  check_int "same colds" plain.Cache.cold_misses v.Victim.cold_misses;
  check_int "no victim hits" 0 v.Victim.victim_hits

let test_victim_absorbs_pingpong () =
  (* 0 and 4 conflict in the array; a 1-entry buffer catches every bounce *)
  let trace = Trace.of_addresses [| 0; 4; 0; 4; 0; 4 |] in
  let v = Victim.simulate ~depth:4 ~victim_entries:1 trace in
  check_int "cold" 2 v.Victim.cold_misses;
  check_int "misses" 0 v.Victim.misses;
  check_int "victim hits" 4 v.Victim.victim_hits

let test_victim_capacity_limit () =
  (* three-way ping-pong overwhelms a 1-entry buffer but not a 2-entry *)
  let trace = Trace.of_addresses [| 0; 4; 8; 0; 4; 8; 0; 4; 8 |] in
  let one = Victim.simulate ~depth:4 ~victim_entries:1 trace in
  let two = Victim.simulate ~depth:4 ~victim_entries:2 trace in
  check_int "one entry cannot hold both victims" 6 one.Victim.misses;
  check_int "two entries catch every bounce" 0 two.Victim.misses;
  check_int "two-entry victim hits" 6 two.Victim.victim_hits

let test_victim_accounting () =
  let trace = Trace.of_addresses (Array.init 200 (fun k -> (k * 13) mod 64)) in
  let v = Victim.simulate ~depth:8 ~victim_entries:4 trace in
  check_int "conservation" 200
    (v.Victim.l1_hits + v.Victim.victim_hits + v.Victim.cold_misses + v.Victim.misses)

let prop_victim_never_worse =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:150 ~name:"victim buffer never increases misses"
       QCheck2.Gen.(array_size (int_range 1 300) (int_bound 63))
       (fun addrs ->
         let trace = Trace.of_addresses addrs in
         let without = Victim.simulate ~depth:8 ~victim_entries:0 trace in
         let with_buffer = Victim.simulate ~depth:8 ~victim_entries:4 trace in
         with_buffer.Victim.misses <= without.Victim.misses))

let test_victim_validation () =
  Alcotest.check_raises "depth" (Invalid_argument "Victim.create: depth must be a positive power of two")
    (fun () -> ignore (Victim.create ~depth:3 ~victim_entries:1 ()));
  Alcotest.check_raises "entries" (Invalid_argument "Victim.create: negative victim_entries")
    (fun () -> ignore (Victim.create ~depth:4 ~victim_entries:(-1) ()))

let suites =
  [
    ( "hierarchy:two-level",
      [
        Alcotest.test_case "routing" `Quick test_routing;
        Alcotest.test_case "L2 sees only L1 misses" `Quick test_l2_filters_hits;
        Alcotest.test_case "Harvard separation in L2" `Quick test_harvard_separation;
        Alcotest.test_case "L2 absorbs L1 conflicts" `Quick test_l2_absorbs_l1_conflicts;
        Alcotest.test_case "mixed-trace simulate" `Quick test_simulate_mixed;
        Alcotest.test_case "split-trace interleave" `Quick test_simulate_split_interleave;
        Alcotest.test_case "amat" `Quick test_amat;
        Alcotest.test_case "amat on a real kernel" `Slow test_amat_prefers_good_l1_on_real_trace;
      ] );
    ( "hierarchy:victim",
      [
        Alcotest.test_case "zero entries = direct mapped" `Quick
          test_victim_zero_entries_is_direct_mapped;
        Alcotest.test_case "absorbs ping-pong" `Quick test_victim_absorbs_pingpong;
        Alcotest.test_case "capacity limit" `Quick test_victim_capacity_limit;
        Alcotest.test_case "accounting" `Quick test_victim_accounting;
        prop_victim_never_worse;
        Alcotest.test_case "validation" `Quick test_victim_validation;
      ] );
  ]
