(* Tests for the virtual machine: assembler, instruction semantics,
   control flow, tracing, faults, and the binary encoder. *)

let check_int = Alcotest.(check int)

let check_bool = Alcotest.(check bool)

(* Run a fragment and observe register v0 (2). *)
let run_items ?init ?mem_words items =
  Machine.run ?init ?mem_words (Asm.assemble items)

let v0_of items = Machine.return_value (run_items items)

let halt_after instrs = List.map Asm.i instrs @ [ Asm.i Isa.Halt ]

(* -- assembler -- *)

let test_labels_resolve () =
  let program =
    Asm.assemble
      [
        Asm.i (Isa.J "end");
        Asm.label "mid";
        Asm.i Isa.Halt;
        Asm.label "end";
        Asm.i (Isa.J "mid");
      ]
  in
  check_int "length" 3 (Array.length program);
  check_bool "forward" true (program.(0) = Isa.J 2);
  check_bool "backward" true (program.(2) = Isa.J 1)

let test_duplicate_label () =
  Alcotest.check_raises "duplicate" (Failure "Asm: duplicate label \"x\"") (fun () ->
      ignore (Asm.assemble [ Asm.label "x"; Asm.label "x"; Asm.i Isa.Halt ]))

let test_undefined_label () =
  Alcotest.check_raises "undefined" (Failure "Asm: undefined label \"nowhere\"") (fun () ->
      ignore (Asm.assemble [ Asm.i (Isa.J "nowhere") ]))

let test_register_validation () =
  Alcotest.check_raises "register 32" (Invalid_argument "Isa: register 32 out of 0..31")
    (fun () -> ignore (Asm.assemble [ Asm.i (Isa.Add (32, 0, 0)) ]))

let test_comments_ignored () =
  let program = Asm.assemble [ Asm.comment "noise"; Asm.i Isa.Halt ] in
  check_int "length" 1 (Array.length program)

let test_li_small_and_large () =
  check_int "small" 42 (v0_of (Asm.li Asm.v0 42 @ [ Asm.i Isa.Halt ]));
  check_int "negative small" (-42) (v0_of (Asm.li Asm.v0 (-42) @ [ Asm.i Isa.Halt ]));
  check_int "large" 0x12345678 (v0_of (Asm.li Asm.v0 0x12345678 @ [ Asm.i Isa.Halt ]));
  check_int "negative 32-bit" (-559038737)
    (v0_of (Asm.li Asm.v0 0xDEADBEEF @ [ Asm.i Isa.Halt ]));
  check_int "aligned to lui" 0x7FFF0000 (v0_of (Asm.li Asm.v0 0x7FFF0000 @ [ Asm.i Isa.Halt ]))

(* -- arithmetic semantics -- *)

let binop_result op a b =
  v0_of
    (Asm.li Asm.t0 a @ Asm.li Asm.t1 b @ halt_after [ op (Asm.v0, Asm.t0, Asm.t1) ])

let test_add_wraps () =
  let add (d, s, t) = Isa.Add (d, s, t) in
  check_int "simple" 7 (binop_result add 3 4);
  check_int "wrap positive" (-2147483648) (binop_result add 0x7FFFFFFF 1);
  check_int "wrap negative" 2147483647 (binop_result add (-2147483648) (-1))

let test_sub_mul () =
  check_int "sub" (-1) (binop_result (fun (d, s, t) -> Isa.Sub (d, s, t)) 3 4);
  check_int "mul" 12 (binop_result (fun (d, s, t) -> Isa.Mul (d, s, t)) 3 4);
  check_int "mul wraps" 0
    (binop_result (fun (d, s, t) -> Isa.Mul (d, s, t)) 0x10000 0x10000)

let test_div_rem () =
  let div (d, s, t) = Isa.Div (d, s, t) and rem (d, s, t) = Isa.Rem (d, s, t) in
  check_int "div" 3 (binop_result div 7 2);
  check_int "div truncates toward zero" (-3) (binop_result div (-7) 2);
  check_int "div by zero is zero" 0 (binop_result div 7 0);
  check_int "rem" 1 (binop_result rem 7 2);
  check_int "rem sign follows dividend" (-1) (binop_result rem (-7) 2);
  check_int "rem by zero is dividend" 7 (binop_result rem 7 0)

let test_logic () =
  check_int "and" 0b1000 (binop_result (fun (d, s, t) -> Isa.And (d, s, t)) 0b1100 0b1010);
  check_int "or" 0b1110 (binop_result (fun (d, s, t) -> Isa.Or (d, s, t)) 0b1100 0b1010);
  check_int "xor" 0b0110 (binop_result (fun (d, s, t) -> Isa.Xor (d, s, t)) 0b1100 0b1010);
  check_int "nor" (-15) (binop_result (fun (d, s, t) -> Isa.Nor (d, s, t)) 0b1100 0b1010)

let test_comparisons () =
  let slt (d, s, t) = Isa.Slt (d, s, t) and sltu (d, s, t) = Isa.Sltu (d, s, t) in
  check_int "slt true" 1 (binop_result slt (-1) 0);
  check_int "slt false" 0 (binop_result slt 0 (-1));
  check_int "sltu: -1 is large" 0 (binop_result sltu (-1) 0);
  check_int "sltu true" 1 (binop_result sltu 0 (-1))

let test_shifts () =
  check_int "sll" 40 (v0_of (Asm.li Asm.t0 5 @ halt_after [ Isa.Sll (Asm.v0, Asm.t0, 3) ]));
  check_int "srl logical on negative" 0x7FFFFFFF
    (v0_of (Asm.li Asm.t0 (-1) @ halt_after [ Isa.Srl (Asm.v0, Asm.t0, 1) ]));
  check_int "sra arithmetic on negative" (-1)
    (v0_of (Asm.li Asm.t0 (-1) @ halt_after [ Isa.Sra (Asm.v0, Asm.t0, 1) ]));
  check_int "sllv"
    (1 lsl 10)
    (v0_of
       (Asm.li Asm.t0 1 @ Asm.li Asm.t1 10
       @ halt_after [ Isa.Sllv (Asm.v0, Asm.t0, Asm.t1) ]));
  check_int "srlv"
    1
    (v0_of
       (Asm.li Asm.t0 1024 @ Asm.li Asm.t1 10
       @ halt_after [ Isa.Srlv (Asm.v0, Asm.t0, Asm.t1) ]));
  check_int "srav"
    (-1)
    (v0_of
       (Asm.li Asm.t0 (-1024) @ Asm.li Asm.t1 10
       @ halt_after [ Isa.Srav (Asm.v0, Asm.t0, Asm.t1) ]));
  check_int "shift amount mod 32"
    2
    (v0_of
       (Asm.li Asm.t0 1 @ Asm.li Asm.t1 33
       @ halt_after [ Isa.Sllv (Asm.v0, Asm.t0, Asm.t1) ]))

let test_immediates () =
  check_int "addi" 5 (v0_of (halt_after [ Isa.Addi (Asm.v0, Asm.zero, 5) ]));
  check_int "andi zero-extends" 0xFFFF
    (v0_of (Asm.li Asm.t0 (-1) @ halt_after [ Isa.Andi (Asm.v0, Asm.t0, 0xFFFF) ]));
  check_int "ori" 0xFF (v0_of (halt_after [ Isa.Ori (Asm.v0, Asm.zero, 0xFF) ]));
  check_int "xori" 0xF0
    (v0_of (Asm.li Asm.t0 0x0F @ halt_after [ Isa.Xori (Asm.v0, Asm.t0, 0xFF) ]));
  check_int "slti" 1 (v0_of (Asm.li Asm.t0 (-5) @ halt_after [ Isa.Slti (Asm.v0, Asm.t0, 0) ]));
  check_int "lui" 0x10000 (v0_of (halt_after [ Isa.Lui (Asm.v0, 1) ]))

let test_register_zero_wired () =
  check_int "write to r0 ignored"
    0
    (v0_of
       (Asm.li Asm.t0 7
       @ halt_after [ Isa.Add (Asm.zero, Asm.t0, Asm.t0); Isa.Add (Asm.v0, Asm.zero, Asm.zero) ]))

(* -- memory -- *)

let test_load_store () =
  let result =
    run_items
      (Asm.li Asm.t0 100
      @ Asm.li Asm.t1 12345
      @ halt_after [ Isa.Sw (Asm.t1, Asm.t0, 5); Isa.Lw (Asm.v0, Asm.t0, 5) ])
  in
  check_int "roundtrip" 12345 (Machine.return_value result);
  check_int "memory cell" 12345 result.Machine.memory.(105)

let test_init_segments () =
  let result =
    run_items ~init:[ (10, [| 7; 8 |]) ] (halt_after [ Isa.Lw (Asm.v0, Asm.zero, 11) ])
  in
  check_int "init" 8 (Machine.return_value result)

let test_memory_fault () =
  let faulting addr =
    match run_items (Asm.li Asm.t0 addr @ halt_after [ Isa.Lw (Asm.v0, Asm.t0, 0) ]) with
    | _ -> false
    | exception Machine.Fault _ -> true
  in
  check_bool "negative" true (faulting (-1));
  check_bool "beyond" true (faulting 65536);
  check_bool "in range" false (faulting 65535)

let test_step_budget_fault () =
  let spin = [ Asm.label "loop"; Asm.i (Isa.J "loop") ] in
  check_bool "budget exhausted" true
    (match Machine.run ~max_steps:100 (Asm.assemble spin) with
    | _ -> false
    | exception Machine.Fault msg -> String.length msg > 0)

let test_fall_off_program () =
  check_bool "missing halt faults" true
    (match run_items [ Asm.i Isa.Nop ] with
    | _ -> false
    | exception Machine.Fault _ -> true)

(* -- control flow -- *)

let test_branches () =
  let taken branch =
    v0_of
      (Asm.li Asm.t0 1 @ Asm.li Asm.t1 2
      @ [
          Asm.i (branch (Asm.t0, Asm.t1, "yes"));
          Asm.i (Isa.Addi (Asm.v0, Asm.zero, 0));
          Asm.i Isa.Halt;
          Asm.label "yes";
          Asm.i (Isa.Addi (Asm.v0, Asm.zero, 1));
          Asm.i Isa.Halt;
        ])
  in
  check_int "beq not taken" 0 (taken (fun (a, b, l) -> Isa.Beq (a, b, l)));
  check_int "bne taken" 1 (taken (fun (a, b, l) -> Isa.Bne (a, b, l)));
  check_int "blt taken" 1 (taken (fun (a, b, l) -> Isa.Blt (a, b, l)));
  check_int "bge not taken" 0 (taken (fun (a, b, l) -> Isa.Bge (a, b, l)))

let test_unsigned_branches () =
  let taken branch =
    v0_of
      (Asm.li Asm.t0 (-1) @ Asm.li Asm.t1 1
      @ [
          Asm.i (branch (Asm.t0, Asm.t1, "yes"));
          Asm.i (Isa.Addi (Asm.v0, Asm.zero, 0));
          Asm.i Isa.Halt;
          Asm.label "yes";
          Asm.i (Isa.Addi (Asm.v0, Asm.zero, 1));
          Asm.i Isa.Halt;
        ])
  in
  (* unsigned: -1 = 0xFFFFFFFF is the largest value *)
  check_int "bltu not taken" 0 (taken (fun (a, b, l) -> Isa.Bltu (a, b, l)));
  check_int "bgeu taken" 1 (taken (fun (a, b, l) -> Isa.Bgeu (a, b, l)))

let test_jal_jr () =
  let program =
    [
      Asm.i (Isa.Jal "sub");
      Asm.i Isa.Halt;
      Asm.label "sub";
      Asm.i (Isa.Addi (Asm.v0, Asm.zero, 99));
      Asm.i (Isa.Jr Asm.ra);
    ]
  in
  let result = run_items program in
  check_int "returned" 99 (Machine.return_value result);
  check_int "ra holds return address" 1 result.Machine.registers.(31)

let test_fibonacci () =
  (* iterative fibonacci(20) = 6765 *)
  let program =
    Asm.concat
      [
        Asm.li Asm.t0 20;
        [
          Asm.i (Isa.Addi (Asm.t1, Asm.zero, 0));
          Asm.i (Isa.Addi (Asm.t2, Asm.zero, 1));
          Asm.label "loop";
          Asm.i (Isa.Beq (Asm.t0, Asm.zero, "done"));
          Asm.i (Isa.Add (Asm.t3, Asm.t1, Asm.t2));
          Asm.move Asm.t1 Asm.t2;
          Asm.move Asm.t2 Asm.t3;
          Asm.i (Isa.Addi (Asm.t0, Asm.t0, -1));
          Asm.i (Isa.J "loop");
          Asm.label "done";
          Asm.move Asm.v0 Asm.t1;
          Asm.i Isa.Halt;
        ];
      ]
  in
  check_int "fib 20" 6765 (v0_of program)

(* -- tracing -- *)

let test_tracing () =
  let program =
    Asm.li Asm.t0 50
    @ halt_after
        [ Isa.Sw (Asm.t0, Asm.t0, 0); Isa.Lw (Asm.v0, Asm.t0, 0); Isa.Nop ]
  in
  let itrace = Trace.create () and dtrace = Trace.create () in
  let result = Machine.run ~itrace ~dtrace (Asm.assemble program) in
  check_int "fetches = steps" result.Machine.steps (Trace.length itrace);
  check_int "data accesses" 2 (Trace.length dtrace);
  check_bool "write then read" true
    (Trace.equal_kind Trace.Write (Trace.kind dtrace 0)
    && Trace.equal_kind Trace.Read (Trace.kind dtrace 1));
  check_int "data address" 50 (Trace.addr dtrace 0);
  check_bool "fetch kinds" true
    (Trace.to_list itrace |> List.for_all (fun a -> Trace.equal_kind Trace.Fetch a.Trace.kind));
  check_int "first fetch at pc 0" 0 (Trace.addr itrace 0)

(* -- encoder -- *)

let all_instruction_shapes : int Isa.instr list =
  [
    Isa.Add (1, 2, 3); Isa.Sub (4, 5, 6); Isa.And (7, 8, 9); Isa.Or (10, 11, 12);
    Isa.Xor (13, 14, 15); Isa.Nor (16, 17, 18); Isa.Slt (19, 20, 21);
    Isa.Sltu (22, 23, 24); Isa.Mul (25, 26, 27); Isa.Div (28, 29, 30);
    Isa.Rem (31, 0, 1); Isa.Sllv (2, 3, 4); Isa.Srlv (5, 6, 7); Isa.Srav (8, 9, 10);
    Isa.Addi (11, 12, -32768); Isa.Andi (13, 14, 65535); Isa.Ori (15, 16, 0);
    Isa.Xori (17, 18, 1); Isa.Slti (19, 20, 32767); Isa.Sltiu (21, 22, -1);
    Isa.Lui (23, 65535); Isa.Sll (24, 25, 31); Isa.Srl (26, 27, 0); Isa.Sra (28, 29, 15);
    Isa.Lw (30, 31, -4); Isa.Sw (0, 1, 4); Isa.Beq (2, 3, 100); Isa.Bne (4, 5, 0);
    Isa.Blt (6, 7, 65535); Isa.Bge (8, 9, 1); Isa.Bltu (10, 11, 2); Isa.Bgeu (12, 13, 3);
    Isa.J 0; Isa.Jal ((1 lsl 26) - 1); Isa.Jr 31; Isa.Nop; Isa.Halt;
  ]

let test_encode_roundtrip_all_shapes () =
  List.iter
    (fun instr ->
      check_bool (Isa.mnemonic instr) true (Encode.decode (Encode.encode instr) = instr))
    all_instruction_shapes

let test_encode_rejects_out_of_range () =
  let rejected instr =
    match Encode.encode instr with _ -> false | exception Invalid_argument _ -> true
  in
  check_bool "imm too big" true (rejected (Isa.Addi (1, 2, 32768)));
  check_bool "imm too small" true (rejected (Isa.Addi (1, 2, -32769)));
  check_bool "andi negative" true (rejected (Isa.Andi (1, 2, -1)));
  check_bool "jump too far" true (rejected (Isa.J (1 lsl 26)));
  check_bool "branch target negative" true (rejected (Isa.Beq (1, 2, -1)))

let test_decode_rejects_unknown_opcode () =
  check_bool "opcode 63" true
    (match Encode.decode (63 lsl 26) with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_run_encoded () =
  let program =
    Asm.assemble
      (Asm.li Asm.t0 7 @ [ Asm.i (Isa.Mul (Asm.v0, Asm.t0, Asm.t0)); Asm.i Isa.Halt ])
  in
  let direct = Machine.run program in
  let encoded = Machine.run_encoded (Encode.encode_program program) in
  check_int "same result" (Machine.return_value direct) (Machine.return_value encoded);
  check_int "value" 49 (Machine.return_value encoded)

let test_disassembler () =
  let render instr = Format.asprintf "%a" Isa.pp_instr instr in
  Alcotest.(check string) "add" "add    $t0, $t1, $t2" (render (Isa.Add (8, 9, 10)));
  Alcotest.(check string) "addi" "addi   $v0, $zero, -5" (render (Isa.Addi (2, 0, -5)));
  Alcotest.(check string) "lw" "lw     $s0, 3($sp)" (render (Isa.Lw (16, 29, 3)));
  Alcotest.(check string) "beq" "beq    $a0, $a1, 12" (render (Isa.Beq (4, 5, 12)));
  Alcotest.(check string) "jal" "jal    7" (render (Isa.Jal 7));
  Alcotest.(check string) "jr" "jr     $ra" (render (Isa.Jr 31));
  Alcotest.(check string) "halt" "halt" (render Isa.Halt);
  check_bool "every shape renders" true
    (List.for_all (fun i -> String.length (render i) > 0) all_instruction_shapes)

let test_register_names () =
  Alcotest.(check string) "zero" "$zero" (Isa.register_name 0);
  Alcotest.(check string) "t8" "$t8" (Isa.register_name 24);
  Alcotest.(check string) "gp" "$gp" (Isa.register_name 28);
  check_bool "all distinct" true
    (let names = List.init 32 Isa.register_name in
     List.length (List.sort_uniq compare names) = 32)

let test_encoded_program_roundtrip () =
  let program =
    Asm.assemble
      (Asm.li Asm.t0 123
      @ [ Asm.i (Isa.Sw (Asm.t0, Asm.zero, 9)); Asm.i (Isa.Lw (Asm.v0, Asm.zero, 9)); Asm.i Isa.Halt ])
  in
  let recovered = Encode.decode_program (Encode.encode_program program) in
  check_bool "programs equal" true (recovered = program);
  check_int "same result" 123 (Machine.return_value (Machine.run recovered))

let prop_encode_roundtrip_random =
  let gen =
    QCheck2.Gen.(
      let reg = int_bound 31 in
      let imm = int_range (-32768) 32767 in
      let uimm = int_bound 65535 in
      oneof
        [
          map3 (fun d s t -> Isa.Add (d, s, t)) reg reg reg;
          map3 (fun d s t -> Isa.Mul (d, s, t)) reg reg reg;
          map3 (fun d s v -> Isa.Addi (d, s, v)) reg reg imm;
          map3 (fun d s v -> Isa.Ori (d, s, v)) reg reg uimm;
          map3 (fun d s v -> Isa.Lw (d, s, v)) reg reg imm;
          map3 (fun d s v -> Isa.Sw (d, s, v)) reg reg imm;
          map3 (fun a b l -> Isa.Beq (a, b, l)) reg reg uimm;
          map (fun t -> Isa.J t) (int_bound ((1 lsl 26) - 1));
          map (fun r -> Isa.Jr r) reg;
        ])
  in
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:500 ~name:"encode/decode roundtrip (random)" gen (fun instr ->
         Encode.decode (Encode.encode instr) = instr))

let suites =
  [
    ( "vm:assembler",
      [
        Alcotest.test_case "labels resolve" `Quick test_labels_resolve;
        Alcotest.test_case "duplicate label" `Quick test_duplicate_label;
        Alcotest.test_case "undefined label" `Quick test_undefined_label;
        Alcotest.test_case "register validation" `Quick test_register_validation;
        Alcotest.test_case "comments ignored" `Quick test_comments_ignored;
        Alcotest.test_case "li expansion" `Quick test_li_small_and_large;
      ] );
    ( "vm:semantics",
      [
        Alcotest.test_case "add wraps" `Quick test_add_wraps;
        Alcotest.test_case "sub/mul" `Quick test_sub_mul;
        Alcotest.test_case "div/rem" `Quick test_div_rem;
        Alcotest.test_case "logic" `Quick test_logic;
        Alcotest.test_case "comparisons" `Quick test_comparisons;
        Alcotest.test_case "shifts" `Quick test_shifts;
        Alcotest.test_case "immediates" `Quick test_immediates;
        Alcotest.test_case "register zero wired" `Quick test_register_zero_wired;
      ] );
    ( "vm:memory",
      [
        Alcotest.test_case "load/store" `Quick test_load_store;
        Alcotest.test_case "init segments" `Quick test_init_segments;
        Alcotest.test_case "memory fault" `Quick test_memory_fault;
        Alcotest.test_case "step budget fault" `Quick test_step_budget_fault;
        Alcotest.test_case "fall off program" `Quick test_fall_off_program;
      ] );
    ( "vm:control",
      [
        Alcotest.test_case "branches" `Quick test_branches;
        Alcotest.test_case "unsigned branches" `Quick test_unsigned_branches;
        Alcotest.test_case "jal/jr" `Quick test_jal_jr;
        Alcotest.test_case "fibonacci" `Quick test_fibonacci;
      ] );
    ("vm:tracing", [ Alcotest.test_case "fetch and data traces" `Quick test_tracing ]);
    ( "vm:encode",
      [
        Alcotest.test_case "roundtrip all shapes" `Quick test_encode_roundtrip_all_shapes;
        Alcotest.test_case "range rejection" `Quick test_encode_rejects_out_of_range;
        Alcotest.test_case "unknown opcode" `Quick test_decode_rejects_unknown_opcode;
        Alcotest.test_case "encoded program runs" `Quick test_encoded_program_roundtrip;
        Alcotest.test_case "run_encoded" `Quick test_run_encoded;
        Alcotest.test_case "disassembler" `Quick test_disassembler;
        Alcotest.test_case "register names" `Quick test_register_names;
        prop_encode_roundtrip_random;
      ] );
  ]
