(* The compiled-workload suite: every program's VM result must equal an
   independent OCaml mirror of the same algorithm, and their traces must
   be usable DSE inputs. *)

let check_int = Alcotest.(check int)

let check_bool = Alcotest.(check bool)

(* -- independent mirrors -- *)

let mirror_matmul () =
  let a = Array.init 256 (fun i -> i mod 17) and b = Array.init 256 (fun i -> i mod 13) in
  let c = Array.make 256 0 in
  for i = 0 to 15 do
    for j = 0 to 15 do
      let acc = ref 0 in
      for k = 0 to 15 do
        acc := !acc + (a.((i * 16) + k) * b.((k * 16) + j))
      done;
      c.((i * 16) + j) <- !acc
    done
  done;
  Array.fold_left ( + ) 0 c

let lcg31 x = W32.sign32 ((x * 1103515245) + 12345) land 0x7FFFFFFF

let mirror_qsort () =
  let a = Array.make 512 0 in
  let x = ref 12345 in
  for i = 0 to 511 do
    x := lcg31 !x;
    a.(i) <- !x mod 10000
  done;
  Array.sort compare a;
  let sum = ref 0 in
  Array.iteri (fun i v -> sum := !sum + (v lxor i)) a;
  !sum

let mirror_dijkstra () =
  let w = Array.init 1024 (fun idx -> (((idx / 32 * 7) + (idx mod 32 * 13)) mod 19) + 1) in
  let dist = Array.make 32 1000000 and settled = Array.make 32 false in
  dist.(0) <- 0;
  for _round = 0 to 31 do
    let best = ref 1000001 and node = ref (-1) in
    for j = 0 to 31 do
      if (not settled.(j)) && dist.(j) < !best then begin
        best := dist.(j);
        node := j
      end
    done;
    if !node >= 0 then begin
      settled.(!node) <- true;
      for j = 0 to 31 do
        let alt = dist.(!node) + w.((!node * 32) + j) in
        if alt < dist.(j) then dist.(j) <- alt
      done
    end
  done;
  Array.fold_left ( + ) 0 dist

let mirror_bitcount () =
  let x = ref 99 and total = ref 0 in
  for _k = 1 to 4096 do
    x := lcg31 !x;
    let rec count w acc = if w = 0 then acc else count (w lsr 1) (acc + (w land 1)) in
    total := !total + count !x 0
  done;
  !total

let mirrors =
  [
    ("matmul", mirror_matmul);
    ("qsort", mirror_qsort);
    ("dijkstra", mirror_dijkstra);
    ("bitcount", mirror_bitcount);
    ("queens", fun () -> 92);
  ]

let result_of program =
  Machine.return_value (Mc_codegen.run (Mc_programs.compiled program))

let program_case (p : Mc_programs.program) =
  Alcotest.test_case (p.Mc_programs.name ^ " result") `Slow (fun () ->
      let mirror = List.assoc p.Mc_programs.name mirrors in
      check_int "mirror = expected" (mirror ()) p.Mc_programs.expected;
      check_int "compiled = expected" p.Mc_programs.expected (result_of p))

let test_registry () =
  check_int "count" 5 (List.length Mc_programs.all);
  check_bool "find" true ((Mc_programs.find "queens").Mc_programs.expected = 92);
  Alcotest.check_raises "missing" Not_found (fun () -> ignore (Mc_programs.find "nope"))

let test_traces_are_dse_ready () =
  let p = Mc_programs.find "dijkstra" in
  let itrace, dtrace = Mc_programs.traces p in
  let istats = Stats.compute itrace and dstats = Stats.compute dtrace in
  check_bool "instruction reuse" true (istats.Stats.max_misses > 0);
  check_bool "data reuse" true (dstats.Stats.max_misses > 0);
  (* the analytical model must agree with simulation on this compiled
     trace too *)
  let outcome = Compare.trace ~max_level:6 dtrace in
  check_bool "model agrees" true (Compare.agree outcome)

let suites =
  [
    ("minic-programs:results", List.map program_case Mc_programs.all);
    ( "minic-programs:infrastructure",
      [
        Alcotest.test_case "registry" `Quick test_registry;
        Alcotest.test_case "traces are DSE-ready" `Slow test_traces_are_dse_ready;
      ] );
  ]
