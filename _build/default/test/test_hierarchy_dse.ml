(* Tests for the L2 exploration over L1 miss streams. *)

let check_int = Alcotest.(check int)

let check_bool = Alcotest.(check bool)

let l1 depth = Config.make ~depth ~associativity:1 ()

let test_miss_stream_contents () =
  let trace = Trace.of_addresses [| 0; 0; 4; 0; 1 |] in
  let stats, misses = Cache.miss_stream (l1 4) trace in
  (* 0 cold, 0 hit, 4 cold(evicts 0 in row 0), 0 miss, 1 cold *)
  check_int "total misses" 4 (Cache.total_misses stats);
  Alcotest.(check (array int)) "stream" [| 0; 4; 0; 1 |] (Trace.addresses misses)

let test_miss_stream_preserves_kinds () =
  let trace =
    Trace.of_list
      [ { Trace.addr = 0; kind = Trace.Write }; { Trace.addr = 4; kind = Trace.Read } ]
  in
  let _, misses = Cache.miss_stream (l1 4) trace in
  check_bool "kinds" true
    (Trace.equal_kind Trace.Write (Trace.kind misses 0)
    && Trace.equal_kind Trace.Read (Trace.kind misses 1))

let test_l2_exploration_consistent () =
  let bench = Registry.find "ucbqsort" in
  let itrace, dtrace = Workload.traces bench in
  let result =
    Hierarchy_dse.explore ~l1i:(l1 64) ~l1d:(l1 64) ~itrace ~dtrace ~max_level:8 ()
  in
  (* the L2 stream length is exactly the total L1 misses *)
  check_int "stream length"
    (Cache.total_misses result.Hierarchy_dse.l1i_stats
    + Cache.total_misses result.Hierarchy_dse.l1d_stats)
    (Trace.length result.Hierarchy_dse.l2_stream);
  (* every L2 instance in the 5% column meets its budget when simulated
     over the same stream *)
  let table = result.Hierarchy_dse.table in
  let budget = List.hd table.Analytical_dse.budgets in
  List.iter
    (fun (depth, assocs) ->
      let associativity = List.hd assocs in
      let sim =
        Cache.simulate (Config.make ~depth ~associativity ()) result.Hierarchy_dse.l2_stream
      in
      check_bool
        (Printf.sprintf "L2 %dx%d within budget" depth associativity)
        true (sim.Cache.misses <= budget))
    table.Analytical_dse.rows

let test_l2_sees_less_with_bigger_l1 () =
  let bench = Registry.find "des" in
  let itrace, dtrace = Workload.traces bench in
  let stream_length l1_depth =
    let result =
      Hierarchy_dse.explore ~l1i:(l1 l1_depth) ~l1d:(l1 l1_depth) ~itrace ~dtrace
        ~max_level:4 ()
    in
    Trace.length result.Hierarchy_dse.l2_stream
  in
  check_bool "bigger L1 filters more" true (stream_length 256 < stream_length 4)

let suites =
  [
    ( "hierarchy_dse",
      [
        Alcotest.test_case "miss stream contents" `Quick test_miss_stream_contents;
        Alcotest.test_case "miss stream kinds" `Quick test_miss_stream_preserves_kinds;
        Alcotest.test_case "L2 exploration consistent" `Slow test_l2_exploration_consistent;
        Alcotest.test_case "bigger L1 filters more" `Slow test_l2_sees_less_with_bigger_l1;
      ] );
  ]
