(* Unit and property tests for the bit-vector set library, checked
   against the stdlib Set as a reference model. *)

module Iset = Set.Make (Int)

let check_list = Alcotest.(check (list int))

let check_int = Alcotest.(check int)

let check_bool = Alcotest.(check bool)

let test_empty () =
  let s = Bitset.create 10 in
  check_int "cardinal" 0 (Bitset.cardinal s);
  check_bool "is_empty" true (Bitset.is_empty s);
  check_list "elements" [] (Bitset.elements s);
  check_bool "mem" false (Bitset.mem s 3)

let test_add_mem () =
  let s = Bitset.create 100 in
  Bitset.add s 0;
  Bitset.add s 63;
  Bitset.add s 64;
  Bitset.add s 99;
  check_bool "mem 0" true (Bitset.mem s 0);
  check_bool "mem 63" true (Bitset.mem s 63);
  check_bool "mem 64" true (Bitset.mem s 64);
  check_bool "mem 99" true (Bitset.mem s 99);
  check_bool "mem 50" false (Bitset.mem s 50);
  check_int "cardinal" 4 (Bitset.cardinal s);
  check_list "elements" [ 0; 63; 64; 99 ] (Bitset.elements s)

let test_add_idempotent () =
  let s = Bitset.create 8 in
  Bitset.add s 5;
  Bitset.add s 5;
  check_int "cardinal" 1 (Bitset.cardinal s)

let test_remove () =
  let s = Bitset.of_list 10 [ 1; 2; 3 ] in
  Bitset.remove s 2;
  check_list "elements" [ 1; 3 ] (Bitset.elements s);
  Bitset.remove s 2;
  check_list "removing absent is a no-op" [ 1; 3 ] (Bitset.elements s)

let test_clear () =
  let s = Bitset.of_list 70 [ 0; 31; 69 ] in
  Bitset.clear s;
  check_bool "is_empty" true (Bitset.is_empty s)

let test_out_of_range () =
  let s = Bitset.create 10 in
  Alcotest.check_raises "add above range" (Invalid_argument "Bitset.add: index 10 out of [0, 10)")
    (fun () -> Bitset.add s 10);
  Alcotest.check_raises "add negative" (Invalid_argument "Bitset.add: index -1 out of [0, 10)")
    (fun () -> Bitset.add s (-1));
  check_bool "mem above range is false" false (Bitset.mem s 1000);
  check_bool "mem negative is false" false (Bitset.mem s (-3))

let test_capacity_mismatch () =
  let a = Bitset.create 10 and b = Bitset.create 20 in
  Alcotest.check_raises "inter"
    (Invalid_argument "Bitset.inter: capacities differ (10 vs 20)") (fun () ->
      ignore (Bitset.inter a b))

let test_inter_union_diff () =
  let a = Bitset.of_list 100 [ 1; 2; 3; 64; 65 ] in
  let b = Bitset.of_list 100 [ 2; 3; 4; 65; 99 ] in
  check_list "inter" [ 2; 3; 65 ] (Bitset.elements (Bitset.inter a b));
  check_list "union" [ 1; 2; 3; 4; 64; 65; 99 ] (Bitset.elements (Bitset.union a b));
  check_list "diff" [ 1; 64 ] (Bitset.elements (Bitset.diff a b));
  check_int "inter_cardinal" 3 (Bitset.inter_cardinal a b)

let test_relations () =
  let a = Bitset.of_list 80 [ 1; 2 ] in
  let b = Bitset.of_list 80 [ 1; 2; 3 ] in
  let c = Bitset.of_list 80 [ 70; 79 ] in
  check_bool "subset" true (Bitset.subset a b);
  check_bool "not subset" false (Bitset.subset b a);
  check_bool "disjoint" true (Bitset.disjoint a c);
  check_bool "not disjoint" false (Bitset.disjoint a b);
  check_bool "equal self" true (Bitset.equal a (Bitset.copy a));
  check_bool "not equal" false (Bitset.equal a b)

let test_copy_independent () =
  let a = Bitset.of_list 10 [ 1 ] in
  let b = Bitset.copy a in
  Bitset.add b 2;
  check_bool "original unchanged" false (Bitset.mem a 2)

let test_choose () =
  let s = Bitset.of_list 200 [ 150; 63; 199 ] in
  check_int "choose = min" 63 (Bitset.choose s);
  Alcotest.check_raises "choose empty" Not_found (fun () ->
      ignore (Bitset.choose (Bitset.create 5)))

let test_fold_iter_order () =
  let s = Bitset.of_list 300 [ 250; 0; 62; 63; 64; 127 ] in
  let seen = ref [] in
  Bitset.iter (fun x -> seen := x :: !seen) s;
  check_list "iter ascending" [ 0; 62; 63; 64; 127; 250 ] (List.rev !seen);
  check_int "fold sum" (250 + 62 + 63 + 64 + 127) (Bitset.fold ( + ) s 0)

let test_pp () =
  let s = Bitset.of_list 10 [ 1; 4 ] in
  Alcotest.(check string) "pp" "{1, 4}" (Format.asprintf "%a" Bitset.pp s)

(* -- properties against the Set reference model -- *)

let capacity = 200

let gen_elems = QCheck2.Gen.(list_size (int_bound 80) (int_bound (capacity - 1)))

let of_elems xs = Bitset.of_list capacity xs

let model xs = Iset.of_list xs

let prop name gen f = QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count:300 ~name gen f)

let prop_cardinal =
  prop "cardinal matches model" gen_elems (fun xs ->
      Bitset.cardinal (of_elems xs) = Iset.cardinal (model xs))

let prop_elements =
  prop "elements match sorted model" gen_elems (fun xs ->
      Bitset.elements (of_elems xs) = Iset.elements (model xs))

let two_lists = QCheck2.Gen.pair gen_elems gen_elems

let prop_inter =
  prop "inter matches model" two_lists (fun (xs, ys) ->
      Bitset.elements (Bitset.inter (of_elems xs) (of_elems ys))
      = Iset.elements (Iset.inter (model xs) (model ys)))

let prop_union =
  prop "union matches model" two_lists (fun (xs, ys) ->
      Bitset.elements (Bitset.union (of_elems xs) (of_elems ys))
      = Iset.elements (Iset.union (model xs) (model ys)))

let prop_diff =
  prop "diff matches model" two_lists (fun (xs, ys) ->
      Bitset.elements (Bitset.diff (of_elems xs) (of_elems ys))
      = Iset.elements (Iset.diff (model xs) (model ys)))

let prop_inter_cardinal =
  prop "inter_cardinal = cardinal of inter" two_lists (fun (xs, ys) ->
      let a = of_elems xs and b = of_elems ys in
      Bitset.inter_cardinal a b = Bitset.cardinal (Bitset.inter a b))

let prop_subset =
  prop "subset matches model" two_lists (fun (xs, ys) ->
      Bitset.subset (of_elems xs) (of_elems ys) = Iset.subset (model xs) (model ys))

let prop_disjoint =
  prop "disjoint matches model" two_lists (fun (xs, ys) ->
      Bitset.disjoint (of_elems xs) (of_elems ys) = Iset.disjoint (model xs) (model ys))

let prop_remove =
  prop "remove then mem is false" gen_elems (fun xs ->
      let s = of_elems xs in
      List.for_all
        (fun x ->
          Bitset.remove s x;
          not (Bitset.mem s x))
        xs)

let suites =
    [
      ( "bitset:unit",
        [
          Alcotest.test_case "empty" `Quick test_empty;
          Alcotest.test_case "add/mem across word boundaries" `Quick test_add_mem;
          Alcotest.test_case "add idempotent" `Quick test_add_idempotent;
          Alcotest.test_case "remove" `Quick test_remove;
          Alcotest.test_case "clear" `Quick test_clear;
          Alcotest.test_case "out-of-range handling" `Quick test_out_of_range;
          Alcotest.test_case "capacity mismatch raises" `Quick test_capacity_mismatch;
          Alcotest.test_case "inter/union/diff" `Quick test_inter_union_diff;
          Alcotest.test_case "subset/disjoint/equal" `Quick test_relations;
          Alcotest.test_case "copy independence" `Quick test_copy_independent;
          Alcotest.test_case "choose" `Quick test_choose;
          Alcotest.test_case "iter/fold order" `Quick test_fold_iter_order;
          Alcotest.test_case "pp" `Quick test_pp;
        ] );
      ( "bitset:properties",
        [
          prop_cardinal;
          prop_elements;
          prop_inter;
          prop_union;
          prop_diff;
          prop_inter_cardinal;
          prop_subset;
          prop_disjoint;
          prop_remove;
        ] );
    ]
