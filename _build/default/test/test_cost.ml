(* Tests for the cost models and the Pareto instance selection. *)

let check_int = Alcotest.(check int)

let check_bool = Alcotest.(check bool)

let config ?(line_words = 1) depth associativity =
  Config.make ~line_words ~depth ~associativity ()

(* -- geometry -- *)

let test_geometry () =
  let g = Cache_cost.geometry (config ~line_words:4 64 2) in
  check_int "index bits" 6 g.Cache_cost.index_bits;
  check_int "offset bits" 2 g.Cache_cost.offset_bits;
  check_int "tag bits" (32 - 6 - 2) g.Cache_cost.tag_bits;
  check_int "bits per line" ((4 * 32) + 24 + 2) g.Cache_cost.bits_per_line;
  check_int "total bits" (64 * 2 * 154) g.Cache_cost.total_bits

(* -- monotonicity of the models -- *)

let test_area_monotone () =
  let area d a = (Cache_cost.estimate (config d a)).Cache_cost.area in
  check_bool "deeper is bigger" true (area 64 1 < area 128 1);
  check_bool "more ways is bigger" true (area 64 1 < area 64 2);
  let line l = (Cache_cost.estimate (config ~line_words:l 64 1)).Cache_cost.area in
  check_bool "wider lines are bigger" true (line 1 < line 4)

let test_energy_monotone () =
  let read d a = (Cache_cost.estimate (config d a)).Cache_cost.read_energy in
  check_bool "more ways burn more" true (read 64 1 < read 64 4);
  check_bool "write >= read" true
    (let e = Cache_cost.estimate (config 64 2) in
     e.Cache_cost.write_energy >= e.Cache_cost.read_energy)

let test_time_monotone () =
  let time d a = (Cache_cost.estimate (config d a)).Cache_cost.access_time in
  check_bool "deeper is slower" true (time 16 1 < time 1024 1);
  check_bool "more ways are slower" true (time 64 1 < time 64 8)

let test_miss_costs_grow_with_line () =
  check_bool "transfer energy" true
    (Cache_cost.miss_transfer_energy (config 16 1)
    < Cache_cost.miss_transfer_energy (config ~line_words:8 16 1));
  check_bool "penalty time" true
    (Cache_cost.miss_penalty_time (config 16 1)
    < Cache_cost.miss_penalty_time (config ~line_words:8 16 1))

(* -- bus activity -- *)

let test_bus_activity_hand () =
  (* 0 -> 1 -> 3: transitions = popcount(1) + popcount(2) = 2, plus the
     initial 0 -> 0 contributes 0 *)
  let a = Bus_cost.address_activity (Trace.of_addresses [| 0; 1; 3 |]) in
  check_int "accesses" 3 a.Bus_cost.accesses;
  check_int "transitions" 2 a.Bus_cost.transitions;
  check_bool "per access" true (abs_float (Bus_cost.transitions_per_access a -. (2.0 /. 3.0)) < 1e-9)

let test_bus_energy_weight () =
  let a = Bus_cost.address_activity (Trace.of_addresses [| 0; 7 |]) in
  check_bool "default weight" true (abs_float (Bus_cost.energy a -. (0.8 *. 3.0)) < 1e-9);
  check_bool "custom weight" true (abs_float (Bus_cost.energy ~per_transition:2.0 a -. 6.0) < 1e-9)

let test_gray_reduces_sequential_activity () =
  let trace = Synthetic.sequential ~start:0 ~length:1024 in
  let binary = Bus_cost.address_activity trace in
  let gray = Bus_cost.gray_code_activity trace in
  (* Gray code flips exactly one bit per increment *)
  check_int "gray transitions" 1023 gray.Bus_cost.transitions;
  check_bool "gray wins on sequential streams" true
    (gray.Bus_cost.transitions < binary.Bus_cost.transitions)

let test_bus_invert () =
  (* alternating all-zeros / all-ones: raw coding flips every line, bus
     invert flips only the invert line after the first transfer *)
  let trace = Trace.of_addresses [| 0; 0xFF; 0; 0xFF; 0; 0xFF |] in
  let raw = Bus_cost.address_activity trace in
  let encoded = Bus_cost.bus_invert_activity ~width:8 trace in
  check_int "raw transitions" 40 raw.Bus_cost.transitions;
  check_int "encoded transitions" 5 encoded.Bus_cost.transitions;
  (* never worse than the raw coding by more than one line per transfer *)
  let random = Trace.of_addresses (Array.init 300 (fun k -> (k * 2654435761) land 0xFFFF)) in
  let raw_r = Bus_cost.address_activity random in
  let enc_r = Bus_cost.bus_invert_activity ~width:16 random in
  check_bool "bounded overhead" true
    (enc_r.Bus_cost.transitions <= raw_r.Bus_cost.transitions + raw_r.Bus_cost.accesses);
  Alcotest.check_raises "width" (Invalid_argument "Bus_cost.bus_invert_activity: bad width")
    (fun () -> ignore (Bus_cost.bus_invert_activity ~width:0 random))

let prop_bus_invert_per_transfer_bound =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:200 ~name:"bus-invert: at most (width+1)/2 flips per transfer"
       QCheck2.Gen.(array_size (int_range 1 100) (int_bound 0xFFFF))
       (fun addrs ->
         let trace = Trace.of_addresses addrs in
         let a = Bus_cost.bus_invert_activity ~width:16 trace in
         a.Bus_cost.transitions <= (17 / 2 + 1) * a.Bus_cost.accesses))

let test_empty_bus () =
  let a = Bus_cost.address_activity (Trace.create ()) in
  check_bool "no activity" true (Bus_cost.transitions_per_access a = 0.0)

(* -- system evaluation -- *)

let test_system_evaluation () =
  let trace = Synthetic.loop ~base:0 ~body:16 ~iterations:8 in
  let totals, stats = System_cost.evaluate_trace (config 16 1) trace in
  check_int "no conflict misses" 0 stats.Cache.misses;
  check_bool "energy positive" true (totals.System_cost.energy > 0.0);
  check_bool "edp consistent" true
    (abs_float (totals.System_cost.edp -. (totals.System_cost.energy *. totals.System_cost.time))
    < 1e-6)

let test_misses_cost_energy () =
  (* same trace, thrashing direct-mapped vs a deeper direct-mapped cache
     that fits (same per-access structure, so misses drive the delta) *)
  let trace = Synthetic.strided ~base:0 ~stride:16 ~count:8 ~iterations:32 in
  let thrash, thrash_stats = System_cost.evaluate_trace (config 16 1) trace in
  let fits, fits_stats = System_cost.evaluate_trace (config 128 1) trace in
  check_bool "thrashing misses" true (thrash_stats.Cache.misses > 0);
  check_int "fitting has none" 0 fits_stats.Cache.misses;
  check_bool "misses dominate energy" true
    (thrash.System_cost.energy > fits.System_cost.energy);
  check_bool "misses dominate time" true (thrash.System_cost.time > fits.System_cost.time)

(* -- Pareto selection -- *)

let sample_trace = lazy (Workload.data_trace (Registry.find "engine"))

let test_pareto_candidates_meet_budget () =
  let trace = Lazy.force sample_trace in
  let stats = Stats.compute trace in
  let k = Stats.budget stats ~percent:10 in
  let points = Pareto.candidates trace ~k in
  check_bool "non-empty" true (points <> []);
  List.iter
    (fun (p : Pareto.point) ->
      check_bool "meets budget analytically" true (p.Pareto.misses <= k);
      let sim =
        Cache.simulate
          (Config.make ~depth:p.Pareto.depth ~associativity:p.Pareto.associativity ())
          trace
      in
      check_bool "meets budget in simulation" true (sim.Cache.misses <= k))
    points

let test_pareto_frontier_sound () =
  let trace = Lazy.force sample_trace in
  let points = Pareto.candidates trace ~k:200 in
  let frontier = Pareto.frontier points in
  check_bool "frontier non-empty" true (frontier <> []);
  check_bool "frontier subset" true
    (List.for_all (fun p -> List.memq p points) frontier);
  (* no frontier point dominated by any candidate *)
  check_bool "frontier undominated" true
    (List.for_all
       (fun p -> not (List.exists (fun q -> Pareto.dominates q p) points))
       frontier);
  (* every excluded point is dominated by someone *)
  check_bool "excluded points are dominated" true
    (List.for_all
       (fun p ->
         List.memq p frontier || List.exists (fun q -> Pareto.dominates q p) points)
       points)

let test_dominates_relation () =
  let mk e t a : Pareto.point =
    {
      Pareto.depth = 1;
      associativity = 1;
      size_words = 1;
      misses = 0;
      totals = { System_cost.energy = e; time = t; area = a; edp = e *. t };
    }
  in
  check_bool "strictly better" true (Pareto.dominates (mk 1. 1. 1.) (mk 2. 2. 2.));
  check_bool "equal does not dominate" false (Pareto.dominates (mk 1. 1. 1.) (mk 1. 1. 1.));
  check_bool "trade-off does not dominate" false (Pareto.dominates (mk 1. 3. 1.) (mk 2. 2. 2.));
  check_bool "one-axis improvement dominates" true (Pareto.dominates (mk 1. 2. 2.) (mk 2. 2. 2.))

let suites =
  [
    ( "cost:cache",
      [
        Alcotest.test_case "geometry" `Quick test_geometry;
        Alcotest.test_case "area monotone" `Quick test_area_monotone;
        Alcotest.test_case "energy monotone" `Quick test_energy_monotone;
        Alcotest.test_case "time monotone" `Quick test_time_monotone;
        Alcotest.test_case "miss costs grow with line" `Quick test_miss_costs_grow_with_line;
      ] );
    ( "cost:bus",
      [
        Alcotest.test_case "hand-computed activity" `Quick test_bus_activity_hand;
        Alcotest.test_case "energy weight" `Quick test_bus_energy_weight;
        Alcotest.test_case "gray coding" `Quick test_gray_reduces_sequential_activity;
        Alcotest.test_case "bus-invert coding" `Quick test_bus_invert;
        prop_bus_invert_per_transfer_bound;
        Alcotest.test_case "empty trace" `Quick test_empty_bus;
      ] );
    ( "cost:system",
      [
        Alcotest.test_case "evaluation" `Quick test_system_evaluation;
        Alcotest.test_case "misses cost energy and time" `Quick test_misses_cost_energy;
      ] );
    ( "cost:pareto",
      [
        Alcotest.test_case "candidates meet budget" `Slow test_pareto_candidates_meet_budget;
        Alcotest.test_case "frontier soundness" `Quick test_pareto_frontier_sound;
        Alcotest.test_case "dominance relation" `Quick test_dominates_relation;
      ] );
  ]
