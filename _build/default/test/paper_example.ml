(* The paper's running example (Tables 1-4, Figure 3): ten 4-bit
   references with five unique addresses. The trace below reproduces the
   published MRCT exactly; unique identifiers are 1-based in the paper
   and 0-based here, so paper reference k is identifier k - 1. *)

let addresses = [| 0b1011; 0b1100; 0b0110; 0b0011; 0b1011; 0b0100; 0b1100; 0b0011; 0b1011; 0b0110 |]

let trace () = Trace.of_addresses addresses

(* unique addresses in first-occurrence order, paper Table 2 *)
let uniques = [| 0b1011; 0b1100; 0b0110; 0b0011; 0b0100 |]

(* paper Table 3, as 0-based identifier lists per bit *)
let zero_sets = [ [ 1; 2; 4 ]; [ 1; 4 ]; [ 0; 3 ]; [ 2; 3; 4 ] ]

let one_sets = [ [ 0; 3 ]; [ 0; 2; 3 ]; [ 1; 2; 4 ]; [ 0; 1 ] ]

(* paper Table 4: conflict sets per identifier, in occurrence order *)
let mrct =
  [
    (0, [ [ 1; 2; 3 ]; [ 1; 3; 4 ] ]);
    (1, [ [ 0; 2; 3; 4 ] ]);
    (2, [ [ 0; 1; 3; 4 ] ]);
    (3, [ [ 0; 1; 4 ] ]);
    (4, []);
  ]

(* paper Figure 3: node sets per level (sorted identifier lists) *)
let level1 = [ [ 1; 2; 4 ]; [ 0; 3 ] ]

let level2 = [ [ 1; 4 ]; [ 2 ]; []; [ 0; 3 ] ]

let level3 = [ []; [ 1; 4 ]; [ 0; 3 ]; [] ]

let level4 = [ [ 4 ]; [ 1 ]; [ 3 ]; [ 0 ] ]
