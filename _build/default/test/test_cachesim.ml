(* Tests for the reference cache simulator and the Mattson one-pass
   stack-distance simulator, including cross-validation of the two. *)

let check_int = Alcotest.(check int)

let check_bool = Alcotest.(check bool)

let lru ?(line_words = 1) ~depth ~associativity () =
  Config.make ~line_words ~depth ~associativity ()

let simulate ?line_words ~depth ~associativity addrs =
  Cache.simulate_addresses (lru ?line_words ~depth ~associativity ()) addrs

(* -- configuration validation -- *)

let test_config_validation () =
  Alcotest.check_raises "depth not power of two"
    (Invalid_argument "Config.make: depth must be a positive power of two") (fun () ->
      ignore (Config.make ~depth:3 ~associativity:1 ()));
  Alcotest.check_raises "zero depth"
    (Invalid_argument "Config.make: depth must be a positive power of two") (fun () ->
      ignore (Config.make ~depth:0 ~associativity:1 ()));
  Alcotest.check_raises "assoc < 1"
    (Invalid_argument "Config.make: associativity must be >= 1") (fun () ->
      ignore (Config.make ~depth:4 ~associativity:0 ()));
  Alcotest.check_raises "bad line"
    (Invalid_argument "Config.make: line_words must be a positive power of two")
    (fun () -> ignore (Config.make ~line_words:3 ~depth:4 ~associativity:1 ()))

let test_config_accessors () =
  let c = Config.make ~line_words:4 ~depth:8 ~associativity:2 () in
  check_int "size" 64 (Config.size_words c);
  check_int "index bits" 3 (Config.index_bits c);
  check_int "offset bits" 2 (Config.offset_bits c)

(* -- direct-mapped behaviour -- *)

let test_direct_mapped_conflict () =
  (* 0 and 4 collide in a depth-4 cache; 1 does not. *)
  let s = simulate ~depth:4 ~associativity:1 [| 0; 4; 0; 4; 1; 1 |] in
  check_int "cold" 3 s.Cache.cold_misses;
  check_int "misses" 2 s.Cache.misses;
  check_int "hits" 1 s.Cache.hits

let test_depth_one () =
  let s = simulate ~depth:1 ~associativity:1 [| 7; 7; 8; 7 |] in
  check_int "cold" 2 s.Cache.cold_misses;
  check_int "misses" 1 s.Cache.misses;
  check_int "hits" 1 s.Cache.hits

(* -- LRU set-associative behaviour -- *)

let test_lru_two_way () =
  (* one set; 0 and 2 and 4 all map to it at depth 2 only if even --
     use depth 1 so every address shares the set. *)
  let s = simulate ~depth:1 ~associativity:2 [| 0; 1; 0; 2; 0; 1 |] in
  (* 0:cold 1:cold 0:hit 2:cold(evict 1) 0:hit 1:miss(evicted) *)
  check_int "cold" 3 s.Cache.cold_misses;
  check_int "hits" 2 s.Cache.hits;
  check_int "misses" 1 s.Cache.misses

let test_lru_eviction_order () =
  (* associativity 2, accesses 0,1 fill; touching 0 makes 1 the LRU
     victim when 2 arrives; then 0 still hits, 1 misses. *)
  let s = simulate ~depth:1 ~associativity:2 [| 0; 1; 0; 2; 0; 1 |] in
  check_int "non-cold misses" 1 s.Cache.misses;
  let s' = simulate ~depth:1 ~associativity:2 [| 0; 1; 1; 2; 0; 1 |] in
  (* here 0 is the LRU victim for 2: 0 misses, 1 still resident *)
  check_int "non-cold misses other order" 2 s'.Cache.misses

let test_fully_associative_no_conflicts () =
  let s = simulate ~depth:1 ~associativity:8 [| 1; 2; 3; 4; 1; 2; 3; 4 |] in
  check_int "misses" 0 s.Cache.misses;
  check_int "hits" 4 s.Cache.hits

(* -- FIFO vs LRU -- *)

let test_fifo_differs_from_lru () =
  (* FIFO does not refresh on hit: after 0,1,0 the FIFO victim is 0,
     while the LRU victim is 1. *)
  let addrs = [| 0; 1; 0; 2; 0 |] in
  let fifo =
    Cache.simulate_addresses
      (Config.make ~replacement:Config.Fifo ~depth:1 ~associativity:2 ())
      addrs
  in
  let lru_stats = simulate ~depth:1 ~associativity:2 addrs in
  check_int "LRU keeps 0 resident" 0 lru_stats.Cache.misses;
  check_int "FIFO evicts 0" 1 fifo.Cache.misses

let test_random_replacement_deterministic () =
  let config seed = Config.make ~replacement:(Config.Random seed) ~depth:2 ~associativity:2 () in
  let addrs = Array.init 200 (fun k -> (k * 7) mod 32) in
  let a = Cache.simulate_addresses (config 42) addrs in
  let b = Cache.simulate_addresses (config 42) addrs in
  check_bool "same seed, same stats" true (a = b)

(* -- write policies -- *)

let test_write_back_writebacks () =
  let config = Config.make ~depth:1 ~associativity:1 () in
  let cache = Cache.create config in
  ignore (Cache.access cache ~addr:0 ~write:true);
  ignore (Cache.access cache ~addr:1 ~write:false);
  (* dirty line 0 evicted *)
  let s = Cache.stats cache in
  check_int "writebacks" 1 s.Cache.writebacks

let test_write_through_no_writebacks () =
  let config = Config.make ~write_policy:Config.Write_through ~depth:1 ~associativity:1 () in
  let cache = Cache.create config in
  ignore (Cache.access cache ~addr:0 ~write:true);
  ignore (Cache.access cache ~addr:1 ~write:false);
  let s = Cache.stats cache in
  check_int "writebacks" 0 s.Cache.writebacks

(* -- line size -- *)

let test_line_size_spatial_locality () =
  let s = simulate ~line_words:4 ~depth:4 ~associativity:1 [| 0; 1; 2; 3; 4; 5; 6; 7 |] in
  check_int "cold" 2 s.Cache.cold_misses;
  check_int "hits" 6 s.Cache.hits;
  check_int "misses" 0 s.Cache.misses

let test_outcome_classification () =
  let cache = Cache.create (Config.make ~depth:1 ~associativity:1 ()) in
  check_bool "first is cold" true (Cache.access cache ~addr:0 ~write:false = Cache.Cold_miss);
  check_bool "repeat hits" true (Cache.access cache ~addr:0 ~write:false = Cache.Hit);
  check_bool "new addr cold" true (Cache.access cache ~addr:1 ~write:false = Cache.Cold_miss);
  check_bool "return is conflict miss" true
    (Cache.access cache ~addr:0 ~write:false = Cache.Miss)

let test_stats_helpers () =
  let s = simulate ~depth:1 ~associativity:1 [| 0; 1; 0; 1 |] in
  check_int "total" 4 (Cache.total_misses s);
  check_bool "rate" true (Cache.miss_rate s = 1.0);
  let empty = simulate ~depth:1 ~associativity:1 [||] in
  check_bool "empty rate" true (Cache.miss_rate empty = 0.0)

(* -- properties -- *)

let prop ?(count = 150) name gen f =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen f)

let gen_trace = QCheck2.Gen.(array_size (int_range 1 400) (int_bound 127))

let gen_depth_assoc =
  QCheck2.Gen.(pair (map (fun k -> 1 lsl k) (int_bound 5)) (int_range 1 8))

let prop_conservation =
  prop "hits + misses = accesses" (QCheck2.Gen.pair gen_trace gen_depth_assoc)
    (fun (addrs, (depth, associativity)) ->
      let s = simulate ~depth ~associativity addrs in
      s.Cache.hits + Cache.total_misses s = Array.length addrs
      && s.Cache.accesses = Array.length addrs)

let prop_cold_equals_unique =
  prop "cold misses = unique lines" (QCheck2.Gen.pair gen_trace gen_depth_assoc)
    (fun (addrs, (depth, associativity)) ->
      let module Iset = Set.Make (Int) in
      let s = simulate ~depth ~associativity addrs in
      s.Cache.cold_misses = Iset.cardinal (Iset.of_list (Array.to_list addrs)))

let prop_misses_monotone_in_assoc =
  prop "LRU misses non-increasing in associativity"
    (QCheck2.Gen.pair gen_trace (QCheck2.Gen.map (fun k -> 1 lsl k) (QCheck2.Gen.int_bound 4)))
    (fun (addrs, depth) ->
      let misses a = (simulate ~depth ~associativity:a addrs).Cache.misses in
      let rec check a prev =
        a > 9 || (let m = misses a in m <= prev && check (a + 1) m)
      in
      check 2 (misses 1))

let prop_stack_sim_matches_cache =
  prop "stack simulator = cache simulator for all associativities"
    (QCheck2.Gen.pair gen_trace (QCheck2.Gen.map (fun k -> 1 lsl k) (QCheck2.Gen.int_bound 4)))
    (fun (addrs, depth) ->
      let trace = Trace.of_addresses addrs in
      let result = Stack_sim.run ~depth trace in
      List.for_all
        (fun associativity ->
          let sim = simulate ~depth ~associativity addrs in
          Stack_sim.misses result ~associativity = sim.Cache.misses
          && Stack_sim.total_misses result ~associativity = Cache.total_misses sim)
        [ 1; 2; 3; 4; 5; 8 ])

let prop_stack_histogram_conservation =
  prop "stack histogram + cold = accesses" gen_trace (fun addrs ->
      let result = Stack_sim.run ~depth:4 (Trace.of_addresses addrs) in
      Array.fold_left ( + ) 0 result.Stack_sim.histogram + result.Stack_sim.cold
      = Array.length addrs)

let test_stack_min_associativity () =
  let trace = Trace.of_addresses [| 0; 1; 0; 1; 0; 1 |] in
  let result = Stack_sim.run ~depth:1 trace in
  check_int "budget 0 needs 2 ways" 2 (Stack_sim.min_associativity result ~budget:0);
  check_int "budget 4 allows direct" 1 (Stack_sim.min_associativity result ~budget:4);
  check_int "budget 3 still needs 2" 2 (Stack_sim.min_associativity result ~budget:3)

let test_stack_rejects_bad_depth () =
  Alcotest.check_raises "depth" (Invalid_argument "Stack_sim.run: depth must be a positive power of two")
    (fun () -> ignore (Stack_sim.run ~depth:3 (Trace.create ())))

let suites =
  [
    ( "cachesim:config",
      [
        Alcotest.test_case "validation" `Quick test_config_validation;
        Alcotest.test_case "accessors" `Quick test_config_accessors;
      ] );
    ( "cachesim:behaviour",
      [
        Alcotest.test_case "direct-mapped conflicts" `Quick test_direct_mapped_conflict;
        Alcotest.test_case "depth one" `Quick test_depth_one;
        Alcotest.test_case "two-way LRU" `Quick test_lru_two_way;
        Alcotest.test_case "LRU eviction order" `Quick test_lru_eviction_order;
        Alcotest.test_case "fully associative" `Quick test_fully_associative_no_conflicts;
        Alcotest.test_case "FIFO differs from LRU" `Quick test_fifo_differs_from_lru;
        Alcotest.test_case "random replacement deterministic" `Quick
          test_random_replacement_deterministic;
        Alcotest.test_case "write-back counts writebacks" `Quick test_write_back_writebacks;
        Alcotest.test_case "write-through has none" `Quick test_write_through_no_writebacks;
        Alcotest.test_case "line size spatial locality" `Quick test_line_size_spatial_locality;
        Alcotest.test_case "outcome classification" `Quick test_outcome_classification;
        Alcotest.test_case "stats helpers" `Quick test_stats_helpers;
      ] );
    ( "cachesim:properties",
      [
        prop_conservation;
        prop_cold_equals_unique;
        prop_misses_monotone_in_assoc;
        prop_stack_sim_matches_cache;
        prop_stack_histogram_conservation;
      ] );
    ( "cachesim:stack",
      [
        Alcotest.test_case "min associativity" `Quick test_stack_min_associativity;
        Alcotest.test_case "rejects bad depth" `Quick test_stack_rejects_bad_depth;
      ] );
  ]
