# Renders the Figure 4 scatter from the data the harness writes:
#   dune exec bench/main.exe -- --fast     # writes figure4.dat
#   gnuplot bench/figure4.gp               # writes figure4.svg
set terminal svg size 720,480
set output "figure4.svg"
set title "Execution time vs N * N' (paper Figure 4)"
set xlabel "trace size * unique references (N * N')"
set ylabel "execution time (s)"
set key off
set grid
f(x) = a * x + b
fit f(x) "figure4.dat" using 2:3 via a, b
plot "figure4.dat" using 2:3 with points pointtype 7 pointsize 0.6, \
     f(x) with lines linewidth 1
