(* Reproduction harness: regenerates every numeric table and figure of
   the paper (see DESIGN.md's per-experiment index) and runs the
   Bechamel micro-benchmarks (one Test.make per table).

     dune exec bench/main.exe            full reproduction + micro-benchmarks
     dune exec bench/main.exe -- --fast  skip the Bechamel section *)

let section title = Format.printf "@.==== %s ====@.@." title

(* Per-section GC watermarks: [Gc.stat ()] sampled at section
   boundaries, keyed by bench section, so a heap regression is
   attributable to a kernel or the serving layer instead of showing up
   only in one end-of-run figure. [top_heap_words] is monotone across
   the process lifetime — which is also why A12 runs first and measures
   its arena phase before any boxed strip or MRCT exists. *)
let gc_sections : (string * Gc.stat) list ref = ref []

let mb_of_words w = float_of_int (w * 8) /. 1048576.0

let record_gc key =
  let stat = Gc.stat () in
  gc_sections := !gc_sections @ [ (key, stat) ];
  stat

(* Traces are produced once and shared by every experiment. *)
let workloads : (string * Trace.t * Trace.t) list =
  List.map
    (fun (b : Workload.t) ->
      let itrace, dtrace = Workload.traces b in
      (b.Workload.name, itrace, dtrace))
    Registry.all

let data_traces = List.map (fun (n, _, d) -> (n, d)) workloads

let instruction_traces = List.map (fun (n, i, _) -> (n, i)) workloads

(* -- E1: the running example, Tables 1-4 and Figure 3 -- *)

let running_example () =
  section "E1: running example (paper Tables 1-4, Figure 3)";
  let addresses =
    [| 0b1011; 0b1100; 0b0110; 0b0011; 0b1011; 0b0100; 0b1100; 0b0011; 0b1011; 0b0110 |]
  in
  let trace = Trace.of_addresses addresses in
  let stripped = Strip.strip trace in
  Format.printf "Table 1 (original trace): %d references@." (Strip.num_refs stripped);
  Format.printf "Table 2 (stripped trace): %d unique references:" (Strip.num_unique stripped);
  Array.iter (fun a -> Format.printf " %04X" a) stripped.Strip.uniques;
  Format.printf "@.";
  let zero_one = Zero_one.build stripped in
  Format.printf "Table 3 (zero/one sets, identifiers are 1-based as in the paper):@.";
  for bit = 0 to Zero_one.bits zero_one - 1 do
    let render s =
      String.concat "," (List.map (fun v -> string_of_int (v + 1)) (Bitset.elements s))
    in
    Format.printf "  B%d  Z={%s}  O={%s}@." bit
      (render (Zero_one.zero zero_one bit))
      (render (Zero_one.one zero_one bit))
  done;
  let mrct = Mrct.build stripped in
  Format.printf "Table 4 (MRCT):@.";
  for id = 0 to Strip.num_unique stripped - 1 do
    let sets =
      Array.to_list (Mrct.conflict_sets mrct id)
      |> List.map (fun set ->
             "{"
             ^ String.concat ","
                 (List.map (fun v -> string_of_int (v + 1)) (List.sort compare (Array.to_list set)))
             ^ "}")
    in
    Format.printf "  %d: {%s}@." (id + 1) (String.concat ", " sets)
  done;
  let bcat = Bcat.build zero_one in
  Format.printf "Figure 3 (BCAT levels):@.";
  for level = 0 to Bcat.max_level bcat do
    let sets =
      List.map
        (fun n ->
          "{"
          ^ String.concat "," (List.map (fun v -> string_of_int (v + 1)) (Array.to_list n.Bcat.ids))
          ^ "}")
        (Bcat.nodes_at_level bcat level)
    in
    Format.printf "  level %d (depth %d): %s@." level (1 lsl level)
      (String.concat " " (List.sort compare sets))
  done;
  let result = Analytical.explore trace ~k:0 in
  Format.printf "optimal zero-miss instances: ";
  List.iter (fun (d, a) -> Format.printf "(%d,%d) " d a) (Optimizer.optimal_pairs result);
  Format.printf "@."

(* -- E2/E3: Tables 5 and 6 -- *)

let stats_table title traces =
  section title;
  let rows = List.map (fun (name, trace) -> (name, Stats.compute trace)) traces in
  Format.printf "%a@." Report.pp_stats_table rows;
  rows

(* -- E4/E5: Tables 7-30 -- *)

let instance_tables title traces =
  section title;
  List.iter
    (fun (name, trace) ->
      let table = Analytical_dse.run ~name trace |> Analytical_dse.trim in
      Format.printf "%a@." Report.pp_instances table)
    traces

(* -- E6/E7/E8: Tables 31/32 and Figure 4 -- *)

let timing_table title traces =
  section title;
  Format.printf "%-10s %10s %10s %12s@." "benchmark" "N" "N'" "time (s)";
  let samples =
    List.map
      (fun (name, trace) ->
        let sample = Timing.analytical_sample ~repeats:3 ~name trace in
        Format.printf "%-10s %10d %10d %12.4f@." name sample.Timing.n sample.Timing.n_unique
          sample.Timing.seconds;
        sample)
      traces
  in
  Format.printf "@.";
  samples

let figure4 samples_with_traces =
  section "E8: Figure 4 (execution time vs N * N')";
  Format.printf "%-16s %14s %12s@." "benchmark" "N*N'" "time (s)";
  let samples = List.map fst samples_with_traces in
  let sorted = List.sort (fun a b -> compare (Timing.work a) (Timing.work b)) samples in
  List.iter
    (fun s -> Format.printf "%-16s %14.0f %12.4f@." s.Timing.name (Timing.work s) s.Timing.seconds)
    sorted;
  let slope, intercept, r2 = Timing.linear_fit samples in
  Format.printf "@.least-squares fit: time = %.3e * (N*N') + %.4f   r^2 = %.3f@." slope
    intercept r2;
  Format.printf "(the paper's claim: average-case linear in N * N'; N * N' is the@.";
  Format.printf " worst-case bound — the realised work is the MRCT volume times the@.";
  Format.printf " number of levels, fitted below as a sharper predictor)@.";
  (* Beyond the paper: fit against the realised work measure. *)
  let realised =
    List.map
      (fun ((s : Timing.sample), trace) ->
        let stripped = Strip.strip trace in
        let volume = Mrct.volume (Mrct.build stripped) in
        let levels = Strip.address_bits stripped + 1 in
        (* encode the realised work in a synthetic sample so the shared
           linear_fit applies: n * n_unique = volume * levels *)
        { s with Timing.n = volume; n_unique = levels })
      samples_with_traces
  in
  let slope', intercept', r2' = Timing.linear_fit realised in
  Format.printf "realised-work fit: time = %.3e * (volume*levels) + %.4f   r^2 = %.3f@."
    slope' intercept' r2';
  (* emit a gnuplot-ready data file; plot with bench/figure4.gp *)
  let oc = open_out "figure4.dat" in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      Printf.fprintf oc "# benchmark  N*N'  seconds\n";
      List.iter
        (fun s -> Printf.fprintf oc "%-16s %14.0f %12.6f\n" s.Timing.name (Timing.work s) s.Timing.seconds)
        sorted);
  Format.printf "(series written to figure4.dat; render with gnuplot bench/figure4.gp)@."

(* -- E8b: controlled scaling study -- *)

let scaling_study () =
  section "E8b: controlled scaling (same kernel, growing input)";
  Format.printf
    "per-kernel run time at input scales 1/2/4 — within one kernel the trace@.";
  Format.printf "character is fixed, isolating the size dependence of Figure 4:@.@.";
  Format.printf "%-10s %12s %12s %12s@." "kernel" "scale 1 (s)" "scale 2 (s)" "scale 4 (s)";
  List.iter
    (fun make ->
      let time_at scale =
        let b : Workload.t = make ~scale in
        let dtrace = Workload.data_trace b in
        let sample = Timing.analytical_sample ~repeats:3 ~name:b.Workload.name dtrace in
        sample.Timing.seconds
      in
      let t1 = time_at 1 and t2 = time_at 2 and t4 = time_at 4 in
      let b1 : Workload.t = make ~scale:1 in
      Format.printf "%-10s %12.4f %12.4f %12.4f@." b1.Workload.name t1 t2 t4)
    [ Fir.make; Engine.make; Qurt.make ]

(* -- A1: line-size ablation -- *)

let ablation_line_size () =
  section "A1: line-size ablation (why the paper fixes line = 1 word)";
  let trace = List.assoc "fir" data_traces in
  Format.printf "fir data trace, depth 64, 2-way LRU:@.";
  Format.printf "%-12s %10s %12s %12s@." "line (words)" "cold" "misses" "total";
  List.iter
    (fun line_words ->
      let config = Config.make ~line_words ~depth:64 ~associativity:2 () in
      let s = Cache.simulate config trace in
      Format.printf "%-12d %10d %12d %12d@." line_words s.Cache.cold_misses s.Cache.misses
        (Cache.total_misses s))
    [ 1; 2; 4; 8; 16 ];
  Format.printf
    "@.line size changes the bus/memory interface, not just the cache, which is@.";
  Format.printf "why the analytical space of the paper varies only depth and ways.@."

(* -- A2: BCAT walk vs fused DFS -- *)

let ablation_dfs () =
  section "A2: ablation — materialised BCAT walk vs fused DFS (paper section 2.4)";
  let trace = List.assoc "engine" data_traces in
  let prepared = Analytical.prepare trace in
  let k = 100 in
  let bcat_result, bcat_time =
    Timing.time (fun () -> Analytical.explore_prepared ~method_:Analytical.Bcat_walk prepared ~k)
  in
  let dfs_result, dfs_time =
    Timing.time (fun () -> Analytical.explore_prepared ~method_:Analytical.Dfs prepared ~k)
  in
  Format.printf "results identical: %b@."
    (Optimizer.optimal_pairs bcat_result = Optimizer.optimal_pairs dfs_result);
  Format.printf "BCAT walk: %.4f s    fused DFS: %.4f s@." bcat_time dfs_time;
  let zero_one = Zero_one.build (Analytical.stripped prepared) in
  let bcat = Bcat.build zero_one in
  Format.printf "materialised tree: %d nodes; the DFS variant allocates none@."
    (Bcat.node_count bcat)

(* -- A3: analytical flow vs traditional simulate-and-tune -- *)

let baseline_comparison () =
  section "A3: proposed flow (Fig 1b) vs traditional simulate-and-tune (Fig 1a)";
  let trace = List.assoc "engine" data_traces in
  let max_level = 8 in
  let analytical_table, analytical_time =
    Timing.time (fun () -> Analytical_dse.run ~max_level ~name:"analytical" trace)
  in
  let one_pass_table, one_pass_time =
    Timing.time (fun () -> Simulated_dse.table_one_pass ~max_level ~name:"one-pass" trace)
  in
  let stats = Stats.compute trace in
  let (), exhaustive_time =
    Timing.time (fun () ->
        List.iter
          (fun level ->
            let k = Stats.budget stats ~percent:5 in
            ignore (Simulated_dse.min_associativity_exhaustive trace ~depth:(1 lsl level) ~k))
          (List.init (max_level + 1) Fun.id))
  in
  let outcome = Compare.tables analytical_table one_pass_table in
  Format.printf "engine data trace, depths 1..%d:@." (1 lsl max_level);
  Format.printf "  analytical (4 budgets at once):      %.4f s@." analytical_time;
  Format.printf "  Mattson one-pass (4 budgets):        %.4f s@." one_pass_time;
  Format.printf "  naive resimulation (1 budget only):  %.4f s@." exhaustive_time;
  Format.printf "  agreement: %a@." Compare.pp outcome

(* -- A4: Mattson crosscheck -- *)

let mattson_crosscheck () =
  section "A4: Mattson stack simulation crosscheck (paper reference [17])";
  let trace = List.assoc "ucbqsort" data_traces in
  let points = ref 0 and agreements = ref 0 in
  List.iter
    (fun depth ->
      let result = Stack_sim.run ~depth trace in
      List.iter
        (fun associativity ->
          incr points;
          let sim = Cache.simulate (Config.make ~depth ~associativity ()) trace in
          if Stack_sim.misses result ~associativity = sim.Cache.misses then incr agreements)
        [ 1; 2; 4; 8 ])
    [ 1; 4; 16; 64; 256 ];
  Format.printf "ucbqsort data trace: stack distances = full simulation on %d/%d points@."
    !agreements !points

(* -- A5: cost model + Pareto selection (future-work extension) -- *)

let pareto_section () =
  section "A5: extension — cost models and Pareto selection over the optimal set";
  let trace = List.assoc "adpcm" data_traces in
  let stats = Stats.compute trace in
  let k = Stats.budget stats ~percent:10 in
  let points = Pareto.candidates trace ~k in
  let frontier = Pareto.frontier points in
  Format.printf "adpcm data trace, K = %d:@." k;
  List.iter
    (fun p ->
      Format.printf "%s %a@." (if List.memq p frontier then "*" else " ") Pareto.pp_point p)
    points;
  Format.printf "Pareto-optimal: %d of %d instances@." (List.length frontier)
    (List.length points)

(* -- A6: trace reduction (related work [14][15]) -- *)

let reduction_section () =
  section "A6: trace stripping by cache filtering (related work [14][15])";
  (* filter with a realistic 4-word line: sequential fetches hit within
     the line, which is where stripping earns its keep *)
  let line_words = 4 in
  Format.printf "%-10s %10s %10s %8s %14s@." "benchmark" "original" "stripped" "ratio"
    "tables equal";
  List.iter
    (fun name ->
      let trace = List.assoc name instruction_traces in
      let r = Reduce.filter ~depth:4 ~line_words trace in
      (* identical (assoc, misses) per level >= 2 at a fixed absolute
         budget — the stripping guarantee *)
      let solve t =
        let result = Analytical.explore ~line_words t ~k:50 in
        Array.to_list result.Optimizer.levels
        |> List.filter (fun (l : Optimizer.level_result) -> l.Optimizer.level >= 2)
        |> List.map (fun (l : Optimizer.level_result) ->
               (l.Optimizer.min_associativity, l.Optimizer.misses))
      in
      let equal_above = solve trace = solve r.Reduce.reduced in
      Format.printf "%-10s %10d %10d %7.1f%% %14b@." name r.Reduce.original_length
        (Trace.length r.Reduce.reduced)
        (100.0 *. Reduce.reduction_ratio r)
        equal_above)
    [ "bcnt"; "crc"; "fir"; "engine" ];
  Format.printf
    "@.(filter: depth 4, 4-word lines — miss-equivalent for every cache of depth >= 4@.";
  Format.printf " with the same line size; budgets recomputed on the stripped trace)@."

(* -- A7: multicore postlude -- *)

let parallel_section () =
  section "A7: extension — multicore postlude (the paper's 'distributed sets' remark)";
  let trace = List.assoc "compress" data_traces in
  let prepared = Analytical.prepare trace in
  let addresses = (Analytical.stripped prepared).Strip.uniques in
  let mrct = Analytical.mrct prepared in
  let max_level = Analytical.max_level prepared in
  Format.printf "host reports %d recommended domain(s); speedups need > 1 core@."
    (Domain.recommended_domain_count ());
  let sequential, t1 =
    Timing.time_wall (fun () -> Dfs_optimizer.explore ~addresses mrct ~max_level ~k:100)
  in
  List.iter
    (fun domains ->
      let parallel, tn =
        Timing.time_wall (fun () ->
            Parallel_optimizer.explore ~domains ~addresses mrct ~max_level ~k:100)
      in
      Format.printf "domains=%d: %.4f s (sequential %.4f s, speedup %.2fx, identical %b)@."
        domains tn t1 (t1 /. tn)
        (Optimizer.optimal_pairs sequential = Optimizer.optimal_pairs parallel))
    [ 2; 4 ]

(* -- A11: streaming fused kernel vs materialized MRCT -- *)

let streaming_section () =
  section "A11: arena and streaming fused kernels vs materialized MRCT (identical histograms)";
  Format.printf "%-10s %14s %14s %14s %14s@." "benchmark" "materialized" "streaming"
    "streaming x4" "arena";
  List.iter
    (fun (name, trace) ->
      let stripped = Strip.strip trace in
      let max_level = Strip.address_bits stripped in
      let materialized, tm =
        Timing.time_wall (fun () ->
            let mrct = Mrct.build stripped in
            Dfs_optimizer.histograms ~addresses:stripped.Strip.uniques mrct ~max_level)
      in
      let streamed, ts =
        Timing.time_wall (fun () -> Streaming.histograms stripped ~max_level)
      in
      let sharded, ts4 =
        Timing.time_wall (fun () -> Streaming.histograms ~domains:4 stripped ~max_level)
      in
      let astrip = Arena_kernel.of_trace trace in
      let arena, ta =
        Timing.time_wall (fun () -> Arena_kernel.histograms astrip ~max_level)
      in
      if not (materialized = streamed && streamed = sharded && streamed = arena) then
        failwith (Printf.sprintf "A11: %s histograms diverge" name);
      Format.printf "%-10s %12.4f s %12.4f s %12.4f s %12.4f s@." name tm ts ts4 ta)
    data_traces;
  Format.printf "@.(PowerStone windows are below Streaming.min_shard_refs = %d, so the@."
    Streaming.min_shard_refs;
  Format.printf " x4 column exercises the sequential fallback; see A12 for real shards)@.";
  ignore (record_gc "a11")

(* -- A12: large synthetic trace, where O(N * N') materialization hurts -- *)

type large_result = {
  large_n : int;
  large_n' : int;
  mrct_words : int;
  materialized_s : float;
  streaming_s : float;
  streaming4_s : float;
  streaming_minor_words : float;
  arena_s : float;
  arena4_s : float;
  arena_minor_words : float;
  arena_peak_mb : float;
  boxed_peak_mb : float;
}

let large_trace_section () =
  section "A12: 10M-reference synthetic trace — off-heap arena vs boxed streaming/materialized";
  let n = 10_000_000 in
  (* a loop nest over 48 lines: every warm occurrence carries a 47-wide
     conflict set, so the materialized table is ~470M words while the
     fused kernels keep just the recency list *)
  let trace = Synthetic.loop ~base:0 ~body:48 ~iterations:((n + 47) / 48) in
  (* Arena phase FIRST: [top_heap_words] is monotone over the process
     lifetime, so the off-heap kernel's watermark must be sampled
     before any boxed strip or MRCT has ever existed. At this point the
     heap holds the trace itself and little else. *)
  let astrip, arena_build_s = Timing.time_wall (fun () -> Arena_kernel.of_trace trace) in
  let max_level = Arena_kernel.address_bits astrip in
  let n = Arena_kernel.num_refs astrip in
  Format.printf "N = %d, N' = %d, %d levels@." n (Arena_kernel.num_unique astrip)
    (max_level + 1);
  let minor_before = Gc.minor_words () in
  let arena, arena_s =
    Timing.time_wall (fun () -> Arena_kernel.histograms astrip ~max_level)
  in
  let arena_minor_words = Gc.minor_words () -. minor_before in
  let arena4, arena4_s =
    Timing.time_wall (fun () -> Arena_kernel.histograms ~domains:4 astrip ~max_level)
  in
  let arena_peak_mb = mb_of_words (record_gc "a12_arena").Gc.top_heap_words in
  (* boxed phase: the classic strip, the boxed streaming kernel, and the
     materialized MRCT cross-check *)
  let stripped = Strip.strip trace in
  let minor_before = Gc.minor_words () in
  let streamed, streaming_s =
    Timing.time_wall (fun () -> Streaming.histograms stripped ~max_level)
  in
  let streaming_minor_words = Gc.minor_words () -. minor_before in
  let sharded, streaming4_s =
    Timing.time_wall (fun () -> Streaming.histograms ~domains:4 stripped ~max_level)
  in
  let (materialized, mrct_words), materialized_s =
    Timing.time_wall (fun () ->
        let mrct = Mrct.build stripped in
        ( Dfs_optimizer.histograms ~addresses:stripped.Strip.uniques mrct ~max_level,
          Mrct.volume mrct + Mrct.total_sets mrct ))
  in
  let boxed_peak_mb = mb_of_words (record_gc "a12_boxed").Gc.top_heap_words in
  Format.printf "materialized MRCT + DFS: %8.3f s  (table: %d words)@." materialized_s
    mrct_words;
  Format.printf "streaming, 1 domain:     %8.3f s  (%.0f minor words allocated)@." streaming_s
    streaming_minor_words;
  Format.printf "streaming, 4 domains:    %8.3f s@." streaming4_s;
  Format.printf "arena, 1 domain:         %8.3f s  (%.0f minor words; strip built in %.3f s)@."
    arena_s arena_minor_words arena_build_s;
  Format.printf "arena, 4 domains:        %8.3f s@." arena4_s;
  Format.printf "peak heap: arena phase %.1f MB, boxed phase %.1f MB (%.1fx)@." arena_peak_mb
    boxed_peak_mb
    (boxed_peak_mb /. arena_peak_mb);
  if not (materialized = streamed && streamed = sharded) then
    failwith "A12: histograms diverge";
  if not (arena = streamed && arena4 = streamed) then
    failwith "A12: arena histograms diverge from streaming";
  (* both fused kernels' occurrence loops are allocation-free: storing
     even one word per warm occurrence would show up as >= 10M minor
     words *)
  if streaming_minor_words >= 1e6 then
    failwith
      (Printf.sprintf "A12: streaming kernel allocated %.0f minor words (expected < 1e6)"
         streaming_minor_words);
  if arena_minor_words >= 1e6 then
    failwith
      (Printf.sprintf "A12: arena kernel allocated %.0f minor words (expected < 1e6)"
         arena_minor_words);
  if streaming4_s >= materialized_s then
    failwith
      (Printf.sprintf "A12: streaming x4 (%.3f s) did not beat materialized (%.3f s)"
         streaming4_s materialized_s);
  (* the tentpole guarantees: the off-heap kernel is roughly as fast as
     the boxed one (locality should make it faster) and its GC-visible
     watermark is >= 10x below the boxed phase's. The wall comparison
     takes each kernel's best configuration and allows 15% — loaded
     single-core runners show 10-30% single-run swing on these kernels
     (the materialized phase varies 2x between runs), and the guardrail
     is for catastrophic regressions, not timer noise. *)
  let arena_best = Float.min arena_s arena4_s in
  let streaming_best = Float.min streaming_s streaming4_s in
  if arena_best > streaming_best *. 1.15 then
    failwith
      (Printf.sprintf "A12: arena (best %.3f s) slower than streaming (best %.3f s)"
         arena_best streaming_best);
  if arena_peak_mb *. 10. > boxed_peak_mb then
    failwith
      (Printf.sprintf "A12: arena peak %.1f MB not 10x below boxed peak %.1f MB"
         arena_peak_mb boxed_peak_mb);
  Format.printf "speedup vs materialized: %.2fx (streaming), %.2fx (arena)@."
    (materialized_s /. streaming_s)
    (materialized_s /. arena_s);
  {
    large_n = n;
    large_n' = Strip.num_unique stripped;
    mrct_words;
    materialized_s;
    streaming_s;
    streaming4_s;
    streaming_minor_words;
    arena_s;
    arena4_s;
    arena_minor_words;
    arena_peak_mb;
    boxed_peak_mb;
  }

(* -- A17: approximate DSE — one-pass sketch vs the exact arena kernel
   on a 10M-reference power-law trace -- *)

type approx_result = {
  approx_n : int;
  approx_span : int;
  approx_distinct : float;
  approx_alpha : float;
  approx_fit_r2 : float;
  sketch_s : float;
  sketch_minor_words : float;
  estimate_s : float;
  exact_s : float;
  sketch_state_bytes : int;
  grid_points : int;
  grid_covered : int;
  mean_rate_err : float;
}

let approx_section () =
  section "A17: 10M-reference power-law trace — one-pass sketch + Che/Fagin vs exact arena";
  let n = 10_000_000 and span = 2_048 and skew = 0.8 and seed = 11 in
  (* the trace goes to disk first: the streaming pass must see a file,
     not a materialised array, or the memory claim is circular *)
  let path = Filename.temp_file "dse_bench_a17" ".bin" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out_bin path in
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () ->
          Trace_io.write_binary_stream oc ~length:n
            (Synthetic.iter_power_law ~seed ~span ~skew ~length:n));
      let sk = Sketch.create () in
      let minor_before = Gc.minor_words () in
      let (), sketch_s =
        Timing.time_wall (fun () ->
            match Trace_io.iter ~format:`Binary path (Sketch.feed sk) with
            | Ok _ -> ()
            | Error e -> failwith ("A17: sketch pass failed: " ^ Dse_error.to_string e))
      in
      let sketch_minor_words = Gc.minor_words () -. minor_before in
      let sketch_state_bytes = Sketch.state_bytes sk in
      let profile = Sketch.finalize sk in
      let (prepared, table), estimate_s =
        Timing.time_wall (fun () ->
            let prepared = Approx_dse.prepare profile in
            (prepared, Approx_dse.table ~name:"powerlaw" prepared))
      in
      let trace = Trace_io.load_binary_exn path in
      let (max_level, hists), exact_s =
        Timing.time_wall (fun () ->
            let astrip = Arena_kernel.of_trace trace in
            let max_level = Arena_kernel.address_bits astrip in
            (max_level, Arena_kernel.histograms astrip ~max_level))
      in
      let points = ref 0 and covered = ref 0 and rate_err_sum = ref 0. in
      for level = 0 to max_level do
        List.iter
          (fun assoc ->
            let exact =
              float_of_int (Optimizer.misses_of_histogram hists.(level) ~associativity:assoc)
            in
            let b = Approx_dse.misses prepared ~depth:(1 lsl level) ~assoc in
            incr points;
            if exact >= b.Approx_dse.lo -. 1e-9 && exact <= b.Approx_dse.hi +. 1e-9 then
              incr covered;
            (* miss-RATE error |est - exact| / N, the MRC-literature
               metric: a ratio against per-point exact counts explodes
               at fitting configurations where exact = 0 but the
               placement model hedges with a small positive estimate *)
            rate_err_sum :=
              !rate_err_sum +. (Float.abs (b.Approx_dse.est -. exact) /. float_of_int n))
          [ 1; 2; 4; 8; 16 ]
      done;
      let mean_rate_err = !rate_err_sum /. float_of_int (max 1 !points) in
      Format.printf "N = %d over %d addresses, zipf(%.1f): fitted alpha %.3f (r2 %.3f)@." n
        span skew table.Approx_dse.alpha table.Approx_dse.fit_r2;
      Format.printf "sketch pass:        %8.3f s  (%d-byte state, %.0f minor words)@." sketch_s
        sketch_state_bytes sketch_minor_words;
      Format.printf "estimate (table):   %8.3f s@." estimate_s;
      Format.printf "exact arena:        %8.3f s  (%.1fx)@." exact_s
        (exact_s /. (sketch_s +. estimate_s));
      Format.printf "bars cover exact:   %d/%d grid points (mean miss-rate error %.3f%%)@."
        !covered !points (100. *. mean_rate_err);
      (* the subsystem's contract: bars may be wide, not wrong; state is
         O(kilobytes) whatever N; and the one-pass path must actually be
         the cheap one on the shape it exists for *)
      if !covered * 100 < !points * 95 then
        failwith
          (Printf.sprintf "A17: bars cover only %d/%d exact points (need 95%%)" !covered
             !points);
      if sketch_state_bytes > 10 * 1024 * 1024 then
        failwith
          (Printf.sprintf "A17: sketch state %d bytes exceeds the 10 MB ceiling"
             sketch_state_bytes);
      if sketch_s +. estimate_s >= exact_s then
        failwith
          (Printf.sprintf "A17: approx (%.3f s) did not beat exact (%.3f s)"
             (sketch_s +. estimate_s) exact_s);
      {
        approx_n = n;
        approx_span = span;
        approx_distinct = profile.Sketch.distinct;
        approx_alpha = table.Approx_dse.alpha;
        approx_fit_r2 = table.Approx_dse.fit_r2;
        sketch_s;
        sketch_minor_words;
        estimate_s;
        exact_s;
        sketch_state_bytes;
        grid_points = !points;
        grid_covered = !covered;
        mean_rate_err;
      })

(* -- A13: serving layer — cold vs cached latency, concurrent clients -- *)

type server_result = {
  cold_s : float;
  warm_s : float;
  clients : int;
  requests : int;
  throughput_rps : float;
  p50_s : float;
  p99_s : float;
}

let percentile sorted p =
  let n = Array.length sorted in
  sorted.(min (n - 1) (int_of_float (ceil (p *. float_of_int n)) - 1 |> max 0))

let server_section () =
  section "A13: serving layer — result-cache speedup and concurrent loopback clients";
  let socket = Filename.temp_file "dse_bench" ".sock" in
  Sys.remove socket;
  let server =
    match
      Server.create ~log:(fun _ -> ())
        { Server.socket_path = socket; tcp = None; node_id = None; workers = 4;
          max_pending = 64; cache_entries = Result_cache.default_capacity;
          wal_path = None; hang_timeout = 30.; max_job_refs = None; memory_budget = None;
          peers = []; replication = 2; replication_queue = 256; anti_entropy = false }
    with
    | Ok s -> s
    | Error e -> failwith ("A13: " ^ Dse_error.to_string e)
  in
  let runner = Domain.spawn (fun () -> Server.run server) in
  Fun.protect
    ~finally:(fun () ->
      Server.stop server;
      Domain.join runner;
      if Sys.file_exists socket then Sys.remove socket)
    (fun () ->
      (* cold vs warm: same submission repeated; every resubmit is
         answered from the content-addressed cache without touching the
         kernel. A wide loop body (N' = 4096) keeps the kernel work
         dominant over the fixed wire cost of shipping the
         64K-reference trace; warm latency is the median of several
         resubmits (the first one still carries the cold run's GC debt). *)
      let trace = Synthetic.loop ~base:0 ~body:4096 ~iterations:16 in
      let submit () =
        match Client.submit ~socket ~name:"a13" trace with
        | Ok payload -> payload
        | Error e -> failwith ("A13 submit: " ^ Dse_error.to_string e)
      in
      let cold_payload, cold_s = Timing.time_wall submit in
      assert (not cold_payload.Protocol.cache_hit);
      let warm_times =
        List.init 5 (fun _ ->
            let payload, dt = Timing.time_wall submit in
            assert payload.Protocol.cache_hit;
            assert (cold_payload.Protocol.outcome = payload.Protocol.outcome);
            dt)
      in
      let warm_s = List.nth (List.sort compare warm_times) 2 in
      Format.printf
        "cold submit: %.4f s    cached resubmit (median of 5): %.4f s    speedup %.1fx@."
        cold_s warm_s (cold_s /. warm_s);
      if warm_s *. 10.0 >= cold_s then
        failwith
          (Printf.sprintf "A13: cached resubmit (%.4f s) not 10x faster than cold (%.4f s)"
             warm_s cold_s);
      (* 8 concurrent clients hammering the same workload: after the first
         miss every request is a cache hit, measuring the serving path *)
      let compress = List.assoc "compress" data_traces in
      ignore
        (match Client.submit ~socket ~name:"compress" compress with
        | Ok p -> p
        | Error e -> failwith ("A13 prime: " ^ Dse_error.to_string e));
      let clients = 8 and per_client = 16 in
      let run_client () =
        Array.init per_client (fun _ ->
            let _, dt =
              Timing.time_wall (fun () ->
                  match Client.submit ~socket ~name:"compress" compress with
                  | Ok p -> assert p.Protocol.cache_hit
                  | Error e -> failwith ("A13 client: " ^ Dse_error.to_string e))
            in
            dt)
      in
      let latencies, elapsed =
        Timing.time_wall (fun () ->
            let domains = List.init clients (fun _ -> Domain.spawn run_client) in
            Array.concat (List.map Domain.join domains))
      in
      Array.sort compare latencies;
      let requests = clients * per_client in
      let throughput = float_of_int requests /. elapsed in
      let p50 = percentile latencies 0.50 and p99 = percentile latencies 0.99 in
      Format.printf
        "%d clients x %d requests: %.0f req/s    p50 %.2f ms    p99 %.2f ms@."
        clients per_client throughput (p50 *. 1e3) (p99 *. 1e3);
      {
        cold_s;
        warm_s;
        clients;
        requests;
        throughput_rps = throughput;
        p50_s = p50;
        p99_s = p99;
      })

(* -- A14: self-healing — WAL-warm restart and coalesced bursts -- *)

type selfheal_result = {
  cold_start_to_answer_s : float;
  warm_start_to_answer_s : float;
  wal_records : int;
  burst_clients : int;
  burst_s : float;
  burst_rps : float;
  kernel_runs : int;
  coalesced : int;
}

let selfheal_section () =
  section "A14: self-healing — WAL-warm restart latency and single-flight bursts";
  let socket = Filename.temp_file "dse_bench14" ".sock" in
  Sys.remove socket;
  let wal = Filename.temp_file "dse_bench14" ".wal" in
  Sys.remove wal;
  let kernel_runs = Atomic.make 0 in
  let config =
    { Server.socket_path = socket; tcp = None; node_id = None; workers = 4;
      max_pending = 64; cache_entries = Result_cache.default_capacity;
      wal_path = Some wal; hang_timeout = 30.; max_job_refs = None; memory_budget = None;
      peers = []; replication = 2; replication_queue = 256; anti_entropy = false }
  in
  let start () =
    match
      Server.create ~on_job_start:(fun () -> Atomic.incr kernel_runs) ~log:(fun _ -> ()) config
    with
    | Ok s ->
      let runner = Domain.spawn (fun () -> Server.run s) in
      (s, runner)
    | Error e -> failwith ("A14: " ^ Dse_error.to_string e)
  in
  let stop (s, runner) =
    Server.stop s;
    Domain.join runner
  in
  let submit ~name trace =
    match Client.submit ~socket ~name trace with
    | Ok payload -> payload
    | Error e -> failwith ("A14 submit: " ^ Dse_error.to_string e)
  in
  let trace = Synthetic.loop ~base:0 ~body:4096 ~iterations:16 in
  (* cold: fresh daemon, empty WAL — the first answer pays the kernel *)
  let cold_payload, cold_start_to_answer_s =
    Timing.time_wall (fun () ->
        let server = start () in
        let payload = submit ~name:"a14" trace in
        stop server;
        payload)
  in
  assert (not cold_payload.Protocol.cache_hit);
  (* warm: same WAL replayed on startup — the first answer is a cache
     hit a kill -9'd daemon would serve identically, since every append
     hit the log before the reply went out *)
  let warm_payload, warm_start_to_answer_s =
    Timing.time_wall (fun () ->
        let server = start () in
        let payload = submit ~name:"a14" trace in
        stop server;
        payload)
  in
  if not warm_payload.Protocol.cache_hit then failwith "A14: restart did not answer warm";
  if cold_payload.Protocol.outcome <> warm_payload.Protocol.outcome then
    failwith "A14: WAL-warm answer diverges from the cold one";
  let wal_records =
    match Wal.replay wal with
    | Ok r -> r.Wal.intact
    | Error e -> failwith ("A14 wal: " ^ Dse_error.to_string e)
  in
  (* coalesced burst: concurrent identical submissions of an uncached
     trace must elect one leader; everyone gets the same answer for one
     kernel run *)
  let burst_trace = Synthetic.loop ~base:(1 lsl 20) ~body:4096 ~iterations:16 in
  let server = start () in
  let runs_before = Atomic.get kernel_runs in
  let burst_clients = 8 in
  let outcomes, burst_s =
    Timing.time_wall (fun () ->
        List.init burst_clients (fun _ ->
            Domain.spawn (fun () -> submit ~name:"a14-burst" burst_trace))
        |> List.map Domain.join)
  in
  let coalesced =
    match Client.server_stats ~socket with
    | Ok s -> s.Protocol.coalesced_hits
    | Error e -> failwith ("A14 stats: " ^ Dse_error.to_string e)
  in
  stop server;
  Sys.remove wal;
  if Sys.file_exists socket then Sys.remove socket;
  let kernel_runs = Atomic.get kernel_runs - runs_before in
  let reference = List.hd outcomes in
  List.iter
    (fun (p : Protocol.result_payload) ->
      if p.Protocol.outcome <> reference.Protocol.outcome then
        failwith "A14: burst answers diverge")
    outcomes;
  let burst_rps = float_of_int burst_clients /. burst_s in
  Format.printf "start-to-answer: cold %.4f s    WAL-warm %.4f s    (%d record(s) replayed)@."
    cold_start_to_answer_s warm_start_to_answer_s wal_records;
  Format.printf "burst of %d identical submissions: %.4f s (%.0f req/s), %d kernel run(s), %d coalesced@."
    burst_clients burst_s burst_rps kernel_runs coalesced;
  {
    cold_start_to_answer_s;
    warm_start_to_answer_s;
    wal_records;
    burst_clients;
    burst_s;
    burst_rps;
    kernel_runs;
    coalesced;
  }

(* -- A15: supervision — hang recovery latency, shed-mode burst -- *)

type supervision_result = {
  hang_timeout_s : float;
  stall_detect_s : float;
  recovery_submit_s : float;
  burst_jobs : int;
  burst_accepted : int;
  burst_shed : int;
  burst_rejected_full : int;
  burst_s : float;
  accepted_rps : float;
}

let supervision_section () =
  section "A15: supervision — watchdog time-to-recovery and shed-mode burst throughput";
  let socket = Filename.temp_file "dse_bench15" ".sock" in
  Sys.remove socket;
  let start ~workers ~max_pending ~hang_timeout =
    let config =
      { Server.socket_path = socket; tcp = None; node_id = None; workers; max_pending;
        cache_entries = Result_cache.default_capacity; wal_path = None;
        hang_timeout; max_job_refs = None; memory_budget = None;
        peers = []; replication = 2; replication_queue = 256; anti_entropy = false }
    in
    match Server.create ~log:(fun _ -> ()) config with
    | Ok s ->
      let runner = Domain.spawn (fun () -> Server.run s) in
      (s, runner)
    | Error e -> failwith ("A15: " ^ Dse_error.to_string e)
  in
  let stop (s, runner) =
    Server.stop s;
    Domain.join runner
  in
  (* time-to-recovery: a wedged worker (injected hang on shard 0) is
     detected, abandoned and answered; the replacement then serves the
     identical resubmission. Wide-but-cheap trace: >= 2 shards at
     --domains 2, tiny unique set so the healthy shard drains fast and
     the rerun is cheap. *)
  let hang_timeout = 0.5 in
  let hang_trace = Synthetic.loop ~base:0 ~body:256 ~iterations:544 in
  let server = start ~workers:1 ~max_pending:16 ~hang_timeout in
  Fault.set (Some { Fault.kind = Fault.Hang; shard = 0; times = 1 });
  let stall_detect_s =
    let result, seconds =
      Timing.time_wall (fun () -> Client.submit ~socket ~domains:2 ~name:"a15" hang_trace)
    in
    (match result with
    | Error (Dse_error.Worker_stalled _) -> ()
    | Error e -> failwith ("A15 stall: " ^ Dse_error.to_string e)
    | Ok _ -> failwith "A15: hung job produced a result");
    seconds
  in
  let recovery_submit_s =
    let result, seconds =
      Timing.time_wall (fun () -> Client.submit ~socket ~domains:2 ~name:"a15" hang_trace)
    in
    (match result with
    | Ok _ -> ()
    | Error e -> failwith ("A15 recovery: " ^ Dse_error.to_string e));
    seconds
  in
  Fault.set None;
  Fault.release_hangs ();
  stop server;
  Format.printf
    "hang-timeout %.2f s: stall answered in %.4f s, replacement served the resubmit in %.4f s@."
    hang_timeout stall_detect_s recovery_submit_s;
  (* shed-mode burst: 4x queue capacity of heavy jobs (a streaming
     shard of references, ~0.5 s of kernel each — enough service time
     to back the queue up past its watermark) against a small pool. The
     daemon sheds instead of queueing; everything it accepts it
     answers. *)
  let workers = 2 and max_pending = 8 in
  let server = start ~workers ~max_pending ~hang_timeout:30. in
  let burst_jobs = 4 * max_pending in
  let replies, burst_s =
    Timing.time_wall (fun () ->
        List.init burst_jobs (fun i ->
            Domain.spawn (fun () ->
                Client.submit ~socket ~name:(Printf.sprintf "a15-burst-%d" i)
                  (Synthetic.loop ~base:(i lsl 20) ~body:1024 ~iterations:68)))
        |> List.map Domain.join)
  in
  let shed =
    match Client.health ~socket with
    | Ok h -> h.Protocol.shed
    | Error e -> failwith ("A15 health: " ^ Dse_error.to_string e)
  in
  stop server;
  if Sys.file_exists socket then Sys.remove socket;
  let accepted =
    List.length (List.filter (function Ok _ -> true | Error _ -> false) replies)
  in
  List.iter
    (function
      | Ok _ | Error (Dse_error.Queue_full _) -> ()
      | Error e -> failwith ("A15 burst: " ^ Dse_error.to_string e))
    replies;
  if accepted = 0 then failwith "A15: shed-mode burst answered nothing";
  let burst_rejected_full = burst_jobs - accepted - shed in
  let accepted_rps = float_of_int accepted /. burst_s in
  Format.printf
    "burst of %d heavy jobs over %d workers / queue %d: %d answered, %d shed, %d full, %.4f s (%.0f accepted req/s)@."
    burst_jobs workers max_pending accepted shed burst_rejected_full burst_s accepted_rps;
  {
    hang_timeout_s = hang_timeout;
    stall_detect_s;
    recovery_submit_s;
    burst_jobs;
    burst_accepted = accepted;
    burst_shed = shed;
    burst_rejected_full;
    burst_s;
    accepted_rps;
  }

(* -- A16: multi-node routing -- *)

type router_result = {
  fleet_nodes : int;
  distinct_traces : int;
  mix_requests : int;
  single_node_rps : float;
  fleet_rps : float;
  locality_hit_rate : float;
  kill_requests : int;
  kill_failures : int;
  kill_failovers : int;
  max_failover_latency_s : float;
}

let router_section () =
  section "A16: routing — aggregate throughput 1 vs 3 nodes, cache locality, failover latency";
  let start_backend () =
    let socket = Filename.temp_file "dse_bench16b" ".sock" in
    Sys.remove socket;
    let config =
      { Server.socket_path = socket; tcp = None; node_id = None; workers = 2; max_pending = 32;
        cache_entries = Result_cache.default_capacity; wal_path = None; hang_timeout = 30.;
        max_job_refs = None; memory_budget = None;
        peers = []; replication = 2; replication_queue = 256; anti_entropy = false }
    in
    match Server.create ~log:(fun _ -> ()) config with
    | Ok s -> (socket, s, Domain.spawn (fun () -> Server.run s))
    | Error e -> failwith ("A16 backend: " ^ Dse_error.to_string e)
  in
  let stop_backend (socket, s, runner) =
    Server.stop s;
    Domain.join runner;
    if Sys.file_exists socket then Sys.remove socket
  in
  let start_router backends =
    let listen = Filename.temp_file "dse_bench16r" ".sock" in
    Sys.remove listen;
    let config = { Router.default_config with Router.listen; backends } in
    match Router.create ~log:(fun _ -> ()) config with
    | Ok r -> (listen, r, Domain.spawn (fun () -> Router.run r))
    | Error e -> failwith ("A16 router: " ^ Dse_error.to_string e)
  in
  let stop_router (listen, r, runner) =
    Router.stop r;
    Domain.join runner;
    if Sys.file_exists listen then Sys.remove listen
  in
  (* the client mix: a zipfian popularity law over a dozen distinct
     traces — a few dominate, most are rare — which is the regime where
     fingerprint locality pays: each popular trace is computed once on
     its owning node and every repeat is that node's cache hit *)
  let distinct = 12 and requests = 96 in
  let traces =
    Array.init distinct (fun i ->
        ( Printf.sprintf "a16-%d" i,
          Synthetic.uniform ~seed:(1001 + (2 * i)) ~span:4096 ~length:8192 ))
  in
  let mix =
    let draw = Synthetic.zipf_sampler ~seed:7 ~n:distinct ~skew:1.1 in
    List.init requests (fun _ -> traces.(draw ()))
  in
  let run_mix ~clients addr jobs =
    (* split the mix over [clients] domains of sequential submitters *)
    let chunks = Array.make clients [] in
    List.iteri (fun i job -> chunks.(i mod clients) <- job :: chunks.(i mod clients)) jobs;
    let failures = Atomic.make 0 in
    let slowest = Atomic.make 0. in
    let note_latency dt =
      let rec bump () =
        let seen = Atomic.get slowest in
        if dt > seen && not (Atomic.compare_and_set slowest seen dt) then bump ()
      in
      bump ()
    in
    let _, seconds =
      Timing.time_wall (fun () ->
          Array.to_list chunks
          |> List.map (fun chunk ->
                 Domain.spawn (fun () ->
                     List.iter
                       (fun (name, trace) ->
                         let result, dt =
                           Timing.time_wall (fun () ->
                               Client.submit ~socket:addr ~name trace)
                         in
                         note_latency dt;
                         match result with
                         | Ok _ -> ()
                         | Error _ -> Atomic.incr failures)
                       chunk))
          |> List.iter Domain.join)
    in
    (seconds, Atomic.get failures, Atomic.get slowest)
  in
  (* one node behind the gateway: the routing-overhead baseline *)
  let b = start_backend () in
  let socket_of (socket, _, _) = socket in
  let r = start_router [ socket_of b ] in
  let addr_of (listen, _, _) = listen in
  let single_s, single_failures, _ = run_mix ~clients:8 (addr_of r) mix in
  stop_router r;
  stop_backend b;
  if single_failures > 0 then failwith "A16: failures against a single healthy node";
  let single_node_rps = float_of_int requests /. single_s in
  (* the same mix over three nodes *)
  let backends = [ start_backend (); start_backend (); start_backend () ] in
  let names = List.map socket_of backends in
  let r = start_router names in
  let fleet_s, fleet_failures, _ = run_mix ~clients:8 (addr_of r) mix in
  if fleet_failures > 0 then failwith "A16: failures against a healthy fleet";
  let fleet_rps = float_of_int requests /. fleet_s in
  (* locality: every repeat of a popular trace should be a cache hit on
     its owning node, so fleet-wide hits/(hits+misses) approaches
     (requests - distinct) / requests *)
  let hits, misses =
    List.fold_left
      (fun (h, m) socket ->
        match Client.server_stats ~socket with
        | Ok s -> (h + s.Protocol.cache_hits, m + s.Protocol.cache_misses)
        | Error e -> failwith ("A16 stats: " ^ Dse_error.to_string e))
      (0, 0) names
  in
  let locality_hit_rate = float_of_int hits /. float_of_int (max 1 (hits + misses)) in
  (* losing a node mid-burst: stop one backend while the warm mix
     replays; every client request must still be answered, and the
     slowest answer bounds the failover + recompute detour *)
  let kill_requests = 48 in
  let kill_mix =
    let draw = Synthetic.zipf_sampler ~seed:9 ~n:distinct ~skew:1.1 in
    List.init kill_requests (fun _ -> traces.(draw ()))
  in
  let victim = List.hd backends in
  let assassin =
    Domain.spawn (fun () ->
        Unix.sleepf 0.05;
        stop_backend victim)
  in
  let kill_s, kill_failures, max_failover_latency_s = run_mix ~clients:8 (addr_of r) kill_mix in
  Domain.join assassin;
  let failovers = (Router.stats (match r with _, router, _ -> router)).Router.failovers in
  stop_router r;
  List.iter stop_backend (List.tl backends);
  Format.printf "zipfian mix: %d requests over %d distinct traces (skew 1.1)@." requests distinct;
  Format.printf "aggregate throughput: %.0f req/s on 1 node, %.0f req/s on 3 nodes@."
    single_node_rps fleet_rps;
  Format.printf "fleet cache locality: %.1f%% hit rate (ideal %.1f%%)@."
    (100. *. locality_hit_rate)
    (100. *. float_of_int (requests - distinct) /. float_of_int requests);
  Format.printf
    "node killed mid-burst: %d/%d answered, %d failover(s), slowest answer %.4f s (%.4f s burst)@."
    (kill_requests - kill_failures) kill_requests failovers max_failover_latency_s kill_s;
  if kill_failures > 0 then failwith "A16: client-visible failures during the node loss";
  {
    fleet_nodes = 3;
    distinct_traces = distinct;
    mix_requests = requests;
    single_node_rps;
    fleet_rps;
    locality_hit_rate;
    kill_requests;
    kill_failures;
    kill_failovers = failovers;
    max_failover_latency_s;
  }

(* -- A18: warm-state replication -- *)

type replication_result = {
  repl_nodes : int;
  repl_traces : int;
  replication_factor : int;
  burst_rps_off : float;
  burst_rps_on : float;
  push_drain_seconds : float;
  failover_cold_seconds : float;
  failover_warm_seconds : float;
  warm_peer_hits : int;
  warm_kernel_reruns : int;
  cold_kernel_reruns : int;
}

let replication_section () =
  section "A18: replication — warm vs cold failover after losing the busiest node";
  let boot (socket, peers, replication) =
    let config =
      { Server.socket_path = socket; tcp = None; node_id = None; workers = 2; max_pending = 32;
        cache_entries = Result_cache.default_capacity; wal_path = None; hang_timeout = 30.;
        max_job_refs = None; memory_budget = None;
        peers; replication; replication_queue = 256; anti_entropy = false }
    in
    match Server.create ~log:(fun _ -> ()) config with
    | Ok s -> (socket, s, Domain.spawn (fun () -> Server.run s))
    | Error e -> failwith ("A18 backend: " ^ Dse_error.to_string e)
  in
  let stop_backend (socket, s, runner) =
    Server.stop s;
    Domain.join runner;
    if Sys.file_exists socket then Sys.remove socket
  in
  let health socket =
    match Client.health ~socket with
    | Ok h -> h
    | Error e -> failwith ("A18 health: " ^ Dse_error.to_string e)
  in
  let traces =
    List.init 8 (fun i ->
        ( Printf.sprintf "a18-%d" i,
          Synthetic.zipfian ~seed:(1801 + i) ~span:4096 ~skew:1.1 ~length:20_000 ))
  in
  (* one cluster pass: warm the fleet through the router, kill the
     busiest node, resubmit everything and time the slowest answer *)
  let run_pass ~replicated =
    let sockets = List.init 3 (fun _ -> Filename.temp_file "dse_bench18b" ".sock") in
    List.iter Sys.remove sockets;
    let servers =
      List.map
        (fun s ->
          if replicated then
            boot (s, List.filter (fun p -> p <> s) sockets, 2)
          else boot (s, [], 1))
        sockets
    in
    let listen = Filename.temp_file "dse_bench18r" ".sock" in
    Sys.remove listen;
    let router =
      match
        Router.create ~log:(fun _ -> ())
          { Router.default_config with Router.listen; backends = sockets;
            health_interval = 0.2; breaker = { Breaker.default_config with cooldown_base = 0.2 } }
      with
      | Ok r -> (listen, r, Domain.spawn (fun () -> Router.run r))
      | Error e -> failwith ("A18 router: " ^ Dse_error.to_string e)
    in
    let listen, r, r_runner = router in
    let submit (name, trace) =
      match Client.submit ~socket:listen ~name trace with
      | Ok payload -> payload
      | Error e -> failwith ("A18 submit: " ^ Dse_error.to_string e)
    in
    (* the warm-up burst: its throughput with replication on vs off is
       the replication overhead on the serving path (pushes are
       off-path, so the cost should be the queue insert alone) *)
    let (), burst_s = Timing.time_wall (fun () -> List.iter (fun job -> ignore (submit job)) traces) in
    let burst_rps = float_of_int (List.length traces) /. burst_s in
    (* wait for the push queues to drain so the warm pass measures
       failover, not replication-in-flight *)
    let (), push_drain_s =
      Timing.time_wall (fun () ->
          if replicated then begin
            let deadline = Unix.gettimeofday () +. 10. in
            let drained () =
              List.for_all
                (fun s ->
                  let h = health s in
                  h.Protocol.replication_lag = 0
                  && h.Protocol.replicated_out = h.Protocol.jobs_completed)
                sockets
            in
            while (not (drained ())) && Unix.gettimeofday () < deadline do
              Unix.sleepf 0.02
            done;
            if not (drained ()) then failwith "A18: replication never drained"
          end)
    in
    (* the busiest node hurts the most to lose *)
    let victim_socket, _ =
      List.fold_left
        (fun (best, jobs) s ->
          let j = (health s).Protocol.jobs_completed in
          if j > jobs then (s, j) else (best, jobs))
        ("", -1) sockets
    in
    let survivors = List.filter (fun s -> s <> victim_socket) sockets in
    let jobs_before = List.map (fun s -> (health s).Protocol.jobs_completed) survivors in
    let victim = List.find (fun (s, _, _) -> s = victim_socket) servers in
    stop_backend victim;
    let slowest = ref 0. in
    List.iter
      (fun job ->
        let payload, dt = Timing.time_wall (fun () -> submit job) in
        ignore payload;
        if dt > !slowest then slowest := dt)
      traces;
    let reruns =
      List.fold_left2
        (fun acc s before -> acc + (health s).Protocol.jobs_completed - before)
        0 survivors jobs_before
    in
    let peer_hits = (Router.stats r).Router.peer_hits in
    Router.stop r;
    Domain.join r_runner;
    if Sys.file_exists listen then Sys.remove listen;
    List.iter (fun ((s, _, _) as srv) -> if s <> victim_socket then stop_backend srv) servers;
    (!slowest, reruns, peer_hits, push_drain_s, burst_rps)
  in
  let cold_s, cold_reruns, _, _, burst_rps_off = run_pass ~replicated:false in
  let warm_s, warm_reruns, warm_peer_hits, push_drain_s, burst_rps_on =
    run_pass ~replicated:true
  in
  Format.printf "fleet of 3, %d distinct traces, busiest node killed after warm-up@."
    (List.length traces);
  Format.printf "replication off: %.1f req/s burst, slowest resubmit %.4f s, %d kernel rerun(s)@."
    burst_rps_off cold_s cold_reruns;
  Format.printf
    "replication on (R=2): %.1f req/s burst, slowest resubmit %.4f s, %d kernel rerun(s), %d peer hit(s), pushes drained in %.4f s@."
    burst_rps_on warm_s warm_reruns warm_peer_hits push_drain_s;
  if warm_peer_hits < 1 then failwith "A18: warm failover produced no peer hits";
  if warm_reruns > 0 then failwith "A18: warm failover re-ran the kernel";
  {
    repl_nodes = 3;
    repl_traces = List.length traces;
    replication_factor = 2;
    burst_rps_off;
    burst_rps_on;
    push_drain_seconds = push_drain_s;
    failover_cold_seconds = cold_s;
    failover_warm_seconds = warm_s;
    warm_peer_hits;
    warm_kernel_reruns = warm_reruns;
    cold_kernel_reruns = cold_reruns;
  }

(* -- A19: online membership -- *)

type membership_result = {
  member_nodes : int;
  member_traces : int;
  drain_handoff_seconds : float;
  drain_pushed : int;
  join_warmup_seconds : float;
  identity_submissions : int;
  identity_identical : int;
}

let membership_section () =
  section "A19: membership — drain handoff, join warm-up, answer identity under churn";
  let boot socket peers =
    let config =
      { Server.socket_path = socket; tcp = None; node_id = None; workers = 2; max_pending = 32;
        cache_entries = Result_cache.default_capacity; wal_path = None; hang_timeout = 30.;
        max_job_refs = None; memory_budget = None;
        peers; replication = 2; replication_queue = 256; anti_entropy = true }
    in
    match Server.create ~log:(fun _ -> ()) config with
    | Ok s -> (socket, s, Domain.spawn (fun () -> Server.run s))
    | Error e -> failwith ("A19 backend: " ^ Dse_error.to_string e)
  in
  let stop_backend (socket, s, runner) =
    Server.stop s;
    Domain.join runner;
    if Sys.file_exists socket then Sys.remove socket
  in
  let sockets = List.init 3 (fun _ -> Filename.temp_file "dse_bench19b" ".sock") in
  List.iter Sys.remove sockets;
  let servers =
    ref (List.map (fun s -> boot s (List.filter (fun p -> p <> s) sockets)) sockets)
  in
  let listen = Filename.temp_file "dse_bench19r" ".sock" in
  Sys.remove listen;
  let router, r_runner =
    match
      Router.create ~log:(fun _ -> ())
        { Router.default_config with Router.listen; backends = sockets;
          health_interval = 0.2; breaker = { Breaker.default_config with cooldown_base = 0.2 } }
    with
    | Ok r -> (r, Domain.spawn (fun () -> Router.run r))
    | Error e -> failwith ("A19 router: " ^ Dse_error.to_string e)
  in
  let traces =
    List.init 8 (fun i ->
        ( Printf.sprintf "a19-%d" i,
          Synthetic.zipfian ~seed:(1901 + i) ~span:4096 ~skew:1.1 ~length:20_000 ))
  in
  (* the identity oracle: what the in-process pipeline answers *)
  let expected =
    List.map (fun (name, trace) -> (name, Protocol.Table (Analytical_dse.run ~name trace))) traces
  in
  let submissions = ref 0 and identical = ref 0 in
  let pass () =
    List.iter
      (fun (name, trace) ->
        incr submissions;
        match Client.submit ~socket:listen ~retries:5 ~name trace with
        | Ok payload -> if payload.Protocol.outcome = List.assoc name expected then incr identical
        | Error _ -> ())
      traces
  in
  let digest socket =
    match Client.request ~socket (Protocol.Cache_query { ring_version = 0; keys = [] }) with
    | Ok (Protocol.Cache_reply { keys; _ }) -> keys
    | _ -> failwith "A19: digest query failed"
  in
  pass ();
  (* graceful drain of a live member, timed end to end: survivors adopt,
     the leaver settles and hands off its warm range, routing moves *)
  let leaver = List.hd sockets in
  let survivors = List.tl sockets in
  let (_, pushed, failed), drain_s =
    Timing.time_wall (fun () ->
        match Admin.drain ~gateway:listen ~contacts:sockets leaver with
        | Ok r -> r
        | Error e -> failwith ("A19 drain: " ^ Dse_error.to_string e))
  in
  if failed <> [] then failwith "A19: drain config push failed";
  let leaver_srv = List.find (fun (s, _, _) -> s = leaver) !servers in
  servers := List.filter (fun (s, _, _) -> s <> leaver) !servers;
  stop_backend leaver_srv;
  pass ();
  (* runtime join of a cold node, timed until anti-entropy has pulled
     every key placed on it under the published ring *)
  let newcomer = Filename.temp_file "dse_bench19j" ".sock" in
  Sys.remove newcomer;
  servers := boot newcomer [] :: !servers;
  let (), join_s =
    Timing.time_wall (fun () ->
        let config =
          match Admin.join ~gateway:listen ~contacts:survivors newcomer with
          | Ok (config, []) -> config
          | Ok (_, (target, e) :: _) ->
            failwith
              (Printf.sprintf "A19 join: push to %s failed: %s" target (Dse_error.to_string e))
          | Error e -> failwith ("A19 join: " ^ Dse_error.to_string e)
        in
        let ring = Ring.create config.Protocol.nodes in
        let wanted =
          List.filter
            (fun (key : Result_cache.key) ->
              Ring.successors ring key.Result_cache.fingerprint
              |> List.filteri (fun i _ -> i < config.Protocol.replication)
              |> List.mem newcomer)
            (List.sort_uniq compare (List.concat_map digest survivors))
        in
        let warmed () =
          let have = digest newcomer in
          List.for_all (fun key -> List.mem key have) wanted
        in
        let deadline = Unix.gettimeofday () +. 15. in
        while (not (warmed ())) && Unix.gettimeofday () < deadline do
          Unix.sleepf 0.02
        done;
        if not (warmed ()) then failwith "A19: the joining node never warmed its range")
  in
  pass ();
  Router.stop router;
  Domain.join r_runner;
  if Sys.file_exists listen then Sys.remove listen;
  List.iter stop_backend !servers;
  Format.printf
    "drain handoff %.4f s (%d record(s)); join warm-up %.4f s; %d/%d answers identical across the churn@."
    drain_s pushed join_s !identical !submissions;
  if pushed < 1 then failwith "A19: the drain handed off nothing";
  if !identical < !submissions then failwith "A19: a routed answer diverged during membership churn";
  {
    member_nodes = 3;
    member_traces = List.length traces;
    drain_handoff_seconds = drain_s;
    drain_pushed = pushed;
    join_warmup_seconds = join_s;
    identity_submissions = !submissions;
    identity_identical = !identical;
  }

(* -- machine-readable output for tracking the perf trajectory -- *)

let emit_json ~fast ~samples ~large ~approx ~server ~selfheal ~supervision ~router ~replication
    ~membership =
  let oc = open_out "BENCH_dse.json" in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      Printf.fprintf oc "{\n  \"schema\": 1,\n  \"mode\": %S,\n" (if fast then "fast" else "full");
      Printf.fprintf oc "  \"workloads\": [\n";
      List.iteri
        (fun idx ((kind : string), (s : Timing.sample)) ->
          Printf.fprintf oc "    {\"name\": %S, \"kind\": %S, \"n\": %d, \"n_unique\": %d, \"wall_seconds\": %.6f}%s\n"
            s.Timing.name kind s.Timing.n s.Timing.n_unique s.Timing.seconds
            (if idx = List.length samples - 1 then "" else ","))
        samples;
      Printf.fprintf oc "  ],\n";
      Printf.fprintf oc
        "  \"large_trace\": {\"n\": %d, \"n_unique\": %d, \"mrct_words\": %d, \"materialized_wall_seconds\": %.6f, \"streaming_wall_seconds\": %.6f, \"streaming_domains4_wall_seconds\": %.6f, \"streaming_minor_words\": %.0f, \"arena_wall_seconds\": %.6f, \"arena_domains4_wall_seconds\": %.6f, \"arena_minor_words\": %.0f, \"arena_peak_heap_mb\": %.1f, \"streaming_peak_heap_mb\": %.1f, \"histograms_identical\": true},\n"
        large.large_n large.large_n' large.mrct_words large.materialized_s large.streaming_s
        large.streaming4_s large.streaming_minor_words large.arena_s large.arena4_s
        large.arena_minor_words large.arena_peak_mb large.boxed_peak_mb;
      Printf.fprintf oc
        "  \"approx\": {\"n\": %d, \"span\": %d, \"distinct\": %.1f, \"alpha\": %.4f, \"fit_r2\": %.4f, \"sketch_wall_seconds\": %.6f, \"sketch_minor_words\": %.0f, \"estimate_wall_seconds\": %.6f, \"exact_wall_seconds\": %.6f, \"speedup\": %.1f, \"sketch_state_bytes\": %d, \"sketch_state_mb\": %.2f, \"grid_points\": %d, \"grid_covered\": %d, \"mean_rate_err\": %.6f},\n"
        approx.approx_n approx.approx_span approx.approx_distinct approx.approx_alpha
        approx.approx_fit_r2 approx.sketch_s approx.sketch_minor_words approx.estimate_s
        approx.exact_s
        (approx.exact_s /. (approx.sketch_s +. approx.estimate_s))
        approx.sketch_state_bytes
        (float_of_int approx.sketch_state_bytes /. 1048576.)
        approx.grid_points approx.grid_covered approx.mean_rate_err;
      Printf.fprintf oc
        "  \"server\": {\"cold_submit_seconds\": %.6f, \"cached_submit_seconds\": %.6f, \"cache_speedup\": %.1f, \"clients\": %d, \"requests\": %d, \"throughput_rps\": %.1f, \"p50_latency_seconds\": %.6f, \"p99_latency_seconds\": %.6f},\n"
        server.cold_s server.warm_s (server.cold_s /. server.warm_s) server.clients
        server.requests server.throughput_rps server.p50_s server.p99_s;
      Printf.fprintf oc
        "  \"selfheal\": {\"cold_start_to_answer_seconds\": %.6f, \"warm_start_to_answer_seconds\": %.6f, \"wal_records_replayed\": %d, \"burst_clients\": %d, \"burst_seconds\": %.6f, \"burst_rps\": %.1f, \"burst_kernel_runs\": %d, \"burst_coalesced_hits\": %d},\n"
        selfheal.cold_start_to_answer_s selfheal.warm_start_to_answer_s selfheal.wal_records
        selfheal.burst_clients selfheal.burst_s selfheal.burst_rps selfheal.kernel_runs
        selfheal.coalesced;
      Printf.fprintf oc
        "  \"supervision\": {\"hang_timeout_seconds\": %.2f, \"stall_detect_seconds\": %.6f, \"recovery_submit_seconds\": %.6f, \"burst_jobs\": %d, \"burst_accepted\": %d, \"burst_shed\": %d, \"burst_rejected_full\": %d, \"burst_seconds\": %.6f, \"accepted_rps\": %.1f},\n"
        supervision.hang_timeout_s supervision.stall_detect_s supervision.recovery_submit_s
        supervision.burst_jobs supervision.burst_accepted supervision.burst_shed
        supervision.burst_rejected_full supervision.burst_s supervision.accepted_rps;
      Printf.fprintf oc
        "  \"router\": {\"fleet_nodes\": %d, \"distinct_traces\": %d, \"mix_requests\": %d, \"single_node_rps\": %.1f, \"fleet_rps\": %.1f, \"locality_hit_rate\": %.3f, \"kill_burst_requests\": %d, \"kill_client_failures\": %d, \"kill_failovers\": %d, \"max_failover_latency_seconds\": %.6f},\n"
        router.fleet_nodes router.distinct_traces router.mix_requests router.single_node_rps
        router.fleet_rps router.locality_hit_rate router.kill_requests router.kill_failures
        router.kill_failovers router.max_failover_latency_s;
      Printf.fprintf oc
        "  \"replication\": {\"fleet_nodes\": %d, \"distinct_traces\": %d, \"replication_factor\": %d, \"burst_rps_replication_off\": %.1f, \"burst_rps_replication_on\": %.1f, \"push_drain_seconds\": %.6f, \"failover_cold_seconds\": %.6f, \"failover_warm_seconds\": %.6f, \"warm_peer_hits\": %d, \"warm_kernel_reruns\": %d, \"cold_kernel_reruns\": %d},\n"
        replication.repl_nodes replication.repl_traces replication.replication_factor
        replication.burst_rps_off replication.burst_rps_on
        replication.push_drain_seconds replication.failover_cold_seconds
        replication.failover_warm_seconds replication.warm_peer_hits
        replication.warm_kernel_reruns replication.cold_kernel_reruns;
      Printf.fprintf oc
        "  \"membership\": {\"fleet_nodes\": %d, \"distinct_traces\": %d, \"drain_handoff_seconds\": %.6f, \"drain_pushed\": %d, \"join_warmup_seconds\": %.6f, \"identity_submissions\": %d, \"identity_identical\": %d},\n"
        membership.member_nodes membership.member_traces membership.drain_handoff_seconds
        membership.drain_pushed membership.join_warmup_seconds membership.identity_submissions
        membership.identity_identical;
      (* per-section GC watermarks: each key is the cumulative
         top_heap at the end of that section (monotone, so the first
         key is the purest reading) *)
      Printf.fprintf oc "  \"gc\": {\n";
      let n_gc = List.length !gc_sections in
      List.iteri
        (fun idx (key, (stat : Gc.stat)) ->
          Printf.fprintf oc
            "    %S: {\"top_heap_words\": %d, \"peak_heap_mb\": %.1f}%s\n" key
            stat.Gc.top_heap_words
            (mb_of_words stat.Gc.top_heap_words)
            (if idx = n_gc - 1 then "" else ","))
        !gc_sections;
      Printf.fprintf oc "  }\n";
      Printf.fprintf oc "}\n");
  Format.printf "@.(machine-readable results written to BENCH_dse.json)@."

(* -- A8: replacement-policy ablation -- *)

let policy_section () =
  section "A8: replacement-policy ablation (paper fixes LRU as 'often optimal')";
  let trace = List.assoc "ucbqsort" data_traces in
  Format.printf "ucbqsort data trace, depth 64:@.";
  Format.printf "%-8s %10s %10s %10s@." "assoc" "LRU" "FIFO" "RANDOM";
  List.iter
    (fun associativity ->
      let misses replacement =
        (Cache.simulate (Config.make ~replacement ~depth:64 ~associativity ()) trace)
          .Cache.misses
      in
      Format.printf "%-8d %10d %10d %10d@." associativity (misses Config.Lru)
        (misses Config.Fifo)
        (misses (Config.Random 7)))
    [ 1; 2; 4; 8 ]

(* -- A9: compiled (MiniC) workloads through the full flow -- *)

let compiled_workloads_section () =
  section "A9: extension — compiled MiniC workloads through the full flow";
  Format.printf "%-10s %8s %10s %10s %8s %18s@." "program" "code" "N (inst)" "N (data)"
    "N'(data)" "10% data instance";
  List.iter
    (fun (p : Mc_programs.program) ->
      let compiled = Mc_programs.compiled p in
      let result = Mc_codegen.run compiled in
      assert (Machine.return_value result = p.Mc_programs.expected);
      let itrace, dtrace = Mc_codegen.traces compiled in
      let stats = Stats.compute dtrace in
      let prepared = Analytical.prepare dtrace in
      let instance =
        Codesign.smallest_instance prepared ~k:(Stats.budget stats ~percent:10)
      in
      Format.printf "%-10s %8d %10d %10d %8d %12dx%-4d@." p.Mc_programs.name
        (Array.length compiled.Mc_codegen.program)
        (Trace.length itrace) (Trace.length dtrace) stats.Stats.n_unique
        instance.Codesign.depth instance.Codesign.associativity)
    Mc_programs.all;
  Format.printf "@.(each program's VM result is asserted against its native mirror)@."

(* -- A10: L2 exploration over the L1 miss stream -- *)

let l2_section () =
  section "A10: extension — analytical L2 exploration over the L1 miss stream";
  let bench = Registry.find "ucbqsort" in
  let itrace, dtrace = Workload.traces bench in
  let l1 = Config.make ~depth:64 ~associativity:1 () in
  let result = Hierarchy_dse.explore ~l1i:l1 ~l1d:l1 ~itrace ~dtrace ~max_level:10 () in
  Format.printf "ucbqsort behind 64x1 L1s: %d + %d L1 misses -> L2 stream of %d refs@.@."
    (Cache.total_misses result.Hierarchy_dse.l1i_stats)
    (Cache.total_misses result.Hierarchy_dse.l1d_stats)
    (Trace.length result.Hierarchy_dse.l2_stream);
  Format.printf "%a@."
    Report.pp_instances
    (Analytical_dse.trim result.Hierarchy_dse.table)

(* -- Bechamel micro-benchmarks: one Test.make per table -- *)

let bechamel_suite () =
  section "Bechamel micro-benchmarks (one test per table)";
  let open Bechamel in
  let stats_test name traces =
    Test.make ~name
      (Staged.stage (fun () -> List.iter (fun (_, t) -> ignore (Stats.compute t)) traces))
  in
  let table_test name trace =
    Test.make ~name (Staged.stage (fun () -> ignore (Analytical_dse.run ~name trace)))
  in
  let timing_test name traces =
    Test.make ~name
      (Staged.stage (fun () ->
           List.iter (fun (n, t) -> ignore (Timing.analytical_sample ~name:n t)) traces))
  in
  let postlude_tests =
    (* head-to-head on the heaviest PowerStone data trace: same histograms,
       three kernels *)
    let trace = List.assoc "compress" data_traces in
    let stripped = Strip.strip trace in
    let astrip = Arena_kernel.of_trace trace in
    let max_level = Strip.address_bits stripped in
    [
      Test.make ~name:"postlude:materialized"
        (Staged.stage (fun () ->
             let mrct = Mrct.build stripped in
             ignore (Dfs_optimizer.histograms ~addresses:stripped.Strip.uniques mrct ~max_level)));
      Test.make ~name:"postlude:streaming"
        (Staged.stage (fun () -> ignore (Streaming.histograms stripped ~max_level)));
      Test.make ~name:"postlude:streaming-x4"
        (Staged.stage (fun () -> ignore (Streaming.histograms ~domains:4 stripped ~max_level)));
      Test.make ~name:"postlude:arena"
        (Staged.stage (fun () -> ignore (Arena_kernel.histograms astrip ~max_level)));
    ]
  in
  let tests =
    [ stats_test "table05:data-stats" data_traces; stats_test "table06:inst-stats" instruction_traces ]
    @ postlude_tests
    @ List.mapi
        (fun idx (name, trace) -> table_test (Printf.sprintf "table%02d:%s-data" (7 + idx) name) trace)
        data_traces
    @ List.mapi
        (fun idx (name, trace) ->
          table_test (Printf.sprintf "table%02d:%s-inst" (19 + idx) name) trace)
        instruction_traces
    @ [
        timing_test "table31:data-timing" data_traces;
        timing_test "table32:inst-timing" instruction_traces;
      ]
  in
  let cfg = Benchmark.cfg ~limit:50 ~quota:(Time.second 0.25) ~kde:None ~stabilize:false () in
  let instances = [ Toolkit.Instance.monotonic_clock ] in
  let ols = Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| "run" |] in
  Format.printf "%-28s %16s@." "test" "time per run";
  List.iter
    (fun test ->
      List.iter
        (fun elt ->
          let raw = Benchmark.run cfg instances elt in
          let result = Analyze.one ols Toolkit.Instance.monotonic_clock raw in
          let nanos =
            match Analyze.OLS.estimates result with Some (e :: _) -> e | _ -> nan
          in
          Format.printf "%-28s %13.3f ms@." (Test.Elt.name elt) (nanos /. 1e6))
        (Test.elements test))
    tests

let () =
  let fast = Array.exists (fun a -> a = "--fast") Sys.argv in
  Format.printf "Analytical Design Space Exploration of Caches — reproduction harness@.";
  running_example ();
  (* A12 runs first: its arena phase's GC watermark is only meaningful
     while no boxed strip/MRCT has ever been live (top_heap_words is
     monotone over the process lifetime) *)
  let large = large_trace_section () in
  let approx = approx_section () in
  ignore (record_gc "a17_approx");
  let _ = stats_table "E2: Table 5 (data trace statistics)" data_traces in
  let _ = stats_table "E3: Table 6 (instruction trace statistics)" instruction_traces in
  instance_tables "E4: Tables 7-18 (optimal data cache instances, K = 5/10/15/20%)" data_traces;
  instance_tables "E5: Tables 19-30 (optimal instruction cache instances)" instruction_traces;
  let data_samples = timing_table "E6: Table 31 (algorithm run time, data traces)" data_traces in
  let inst_samples =
    timing_table "E7: Table 32 (algorithm run time, instruction traces)" instruction_traces
  in
  (* extra Figure 4 points: the whole suite at input scale 2 *)
  let scaled_samples =
    List.map
      (fun (b : Workload.t) ->
        let dtrace = Workload.data_trace b in
        (Timing.analytical_sample ~repeats:2 ~name:b.Workload.name dtrace, dtrace))
      (Registry.scaled 2)
  in
  let with_traces =
    List.map2 (fun s (_, t) -> (s, t)) data_samples data_traces
    @ List.map2 (fun s (_, t) -> (s, t)) inst_samples instruction_traces
    @ scaled_samples
  in
  figure4 with_traces;
  scaling_study ();
  ablation_line_size ();
  ablation_dfs ();
  baseline_comparison ();
  mattson_crosscheck ();
  pareto_section ();
  reduction_section ();
  parallel_section ();
  streaming_section ();
  let server = server_section () in
  ignore (record_gc "server");
  let selfheal = selfheal_section () in
  ignore (record_gc "selfheal");
  let supervision = supervision_section () in
  ignore (record_gc "supervision");
  let router = router_section () in
  ignore (record_gc "router");
  let replication = replication_section () in
  ignore (record_gc "replication");
  let membership = membership_section () in
  ignore (record_gc "membership");
  policy_section ();
  compiled_workloads_section ();
  l2_section ();
  if not fast then bechamel_suite ();
  let samples =
    List.map (fun s -> ("data", s)) data_samples
    @ List.map (fun s -> ("inst", s)) inst_samples
  in
  emit_json ~fast ~samples ~large ~approx ~server ~selfheal ~supervision ~router ~replication
    ~membership;
  Format.printf "@.done.@."
